//! `grdf-cli` — command-line front end for the GRDF library.
//!
//! ```text
//! grdf-cli ontology [turtle|rdfxml]             emit the GRDF ontology
//! grdf-cli convert  <file> [turtle|rdfxml|gml]  convert between formats
//! grdf-cli query    <file> <sparql>             run a query (use @file for the query text)
//! grdf-cli validate <file>                      materialize + OWL consistency check
//! grdf-cli stats    <file>                      triple/feature/identity statistics
//! grdf-cli health   <file> [--json]             stand up G-SACS over the data and report service health
//! grdf-cli trace    <file> <sparql>             run a query through G-SACS with tracing on; print the
//!                                               per-stage timing tree and the access-decision trace
//! grdf-cli lint     <file> [--policies <file>] [--format text|json] [--deny-warnings]
//!                                               static analysis: referential, schema, consistency,
//!                                               policy (incl. label passes S007-S010), and topology
//!                                               passes; with policies, also the differential
//!                                               label/view equivalence proof
//! grdf-cli labels   explain <file> <role> <s> <p> <o> [--policies <file>]
//!                                               why a triple is visible/hidden/leaked for a role
//! grdf-cli labels   verify  <file | --scenario> [--policies <file>]
//!                                               prove label-filtered scans == secure views (exit 2
//!                                               on divergence)
//! grdf-cli labels   stats   <file | --scenario> [--policies <file>]
//!                                               label table statistics (roles, classes, coverage)
//! grdf-cli serve    <file> [--addr H:P] [--policies <file>] [--allow-probe] [...]
//!                                               serve the data over the multi-tenant HTTP layer
//! grdf-cli client   <url> [--role R] [--tenant T] [--deadline-ms N] [--body S|@f]
//!                                               one HTTP request against a running server
//! grdf-cli chaos    <addr> [--seed N] [--cases N]
//!                                               seeded socket-fault campaign against a server
//! grdf-cli sim      [--seed N] [--steps N] [--quick] [--replay] [--shrink]
//!                   [--bug NAME] [--swarm N] [--out DIR] [--json]
//!                                               deterministic whole-system simulation: one master
//!                                               seed drives engine, storage, connection, and clock
//!                                               faults against the full in-memory stack; failing
//!                                               schedules persist as {master_seed, step_count} and
//!                                               shrink to a minimal counterexample
//! grdf-cli top      <addr> [--iterations N] [--interval-ms N]
//!                                               poll /metrics: per-tenant QPS/p99/shed + SLO burn
//! grdf-cli metrics-check <file>                 Prometheus format-conformance gate for CI
//! ```
//!
//! Input format is detected from the extension: `.gml`, `.ttl`/`.turtle`,
//! `.rdf`/`.xml`/`.owl` (RDF/XML), `.nt` (N-Triples).
//!
//! Exit codes: `0` success (for `lint`: the gate passed), `1` usage or
//! I/O error, `2` error-level lint findings, `3` warnings rejected by
//! `--deny-warnings`.

use std::process::ExitCode;
use std::sync::Arc;

use grdf::core::ontology::{grdf_ontology, stats as onto_stats};
use grdf::core::store::GrdfStore;
use grdf::query::QueryResult;
use grdf::rdf::PrefixMap;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok((output, code)) => {
            println!("{output}");
            ExitCode::from(code)
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  grdf-cli ontology [turtle|rdfxml]
  grdf-cli convert  <file> [turtle|rdfxml|gml]
  grdf-cli query    <file> <sparql | @queryfile>
  grdf-cli validate <file>
  grdf-cli stats    <file>
  grdf-cli health   <file | --from-json <file>> [--json] [--check]
  grdf-cli trace    <file> <sparql | @queryfile>
  grdf-cli lint     <file> [--policies <file>] [--format text|json] [--deny-warnings]
  grdf-cli labels   explain <file | --scenario> <role> <s> <p> <o> [--policies <file>]
  grdf-cli labels   verify  <file | --scenario> [--policies <file>]
  grdf-cli labels   stats   <file | --scenario> [--policies <file>]
  grdf-cli store    init <dir> <file>
  grdf-cli store    verify <dir> [--format text|json] [--json-out <path>]
  grdf-cli store    recover <dir>
  grdf-cli serve    <file> [--addr 127.0.0.1:0] [--policies <file>] [--allow-probe]
                    [--workers N] [--max-conns N] [--quota-rps F] [--quota-burst F]
                    [--deadline-ms N] [--max-requests N] [--trace-capacity N]
                    [--slo SPEC]... [--no-slo] [--tenant-cap N]
                    [--profile-interval-ms N] [--no-profile]
  grdf-cli top      <addr> [--iterations N] [--interval-ms N]
  grdf-cli metrics-check <file>
  grdf-cli client   <url> [--method M] [--role R] [--tenant T] [--deadline-ms N]
                    [--trace-id H] [--body S | --body @file]
  grdf-cli chaos    <addr> [--seed N] [--cases N]
  grdf-cli sim      [--seed N] [--steps N] [--quick] [--replay] [--shrink]
                    [--bug ack-without-wal] [--swarm N] [--out DIR] [--json]";

/// Run a CLI invocation; returns the text to print and the process exit
/// code (nonzero only for `lint` gate failures — usage and I/O errors go
/// through `Err`).
fn run(args: &[String]) -> Result<(String, u8), String> {
    let cmd = args.first().ok_or("missing command")?;
    if cmd == "lint" {
        return cmd_lint(&args[1..]);
    }
    if cmd == "labels" {
        return cmd_labels(&args[1..]);
    }
    if cmd == "store" {
        return cmd_store(&args[1..]);
    }
    if cmd == "health" {
        return cmd_health(&args[1..]);
    }
    if cmd == "serve" {
        return cmd_serve(&args[1..]);
    }
    if cmd == "top" {
        return cmd_top(&args[1..]);
    }
    if cmd == "metrics-check" {
        return cmd_metrics_check(&args[1..]);
    }
    if cmd == "client" {
        return cmd_client(&args[1..]);
    }
    if cmd == "chaos" {
        return cmd_chaos(&args[1..]);
    }
    if cmd == "sim" {
        return cmd_sim(&args[1..]);
    }
    let output = match cmd.as_str() {
        "ontology" => cmd_ontology(args.get(1).map_or("turtle", String::as_str)),
        "convert" => {
            let file = args.get(1).ok_or("convert needs an input file")?;
            let format = args.get(2).map_or("turtle", String::as_str);
            cmd_convert(file, format)
        }
        "query" => {
            let file = args.get(1).ok_or("query needs a data file")?;
            let query = args.get(2).ok_or("query needs a query string")?;
            cmd_query(file, query)
        }
        "validate" => cmd_validate(args.get(1).ok_or("validate needs a data file")?),
        "stats" => cmd_stats(args.get(1).ok_or("stats needs a data file")?),
        "trace" => {
            let file = args.get(1).ok_or("trace needs a data file")?;
            let query = args.get(2).ok_or("trace needs a query string")?;
            cmd_trace(file, query)
        }
        other => Err(format!("unknown command {other:?}")),
    }?;
    Ok((output, 0))
}

/// `lint <file> [--policies <file>] [--format text|json] [--deny-warnings]`.
///
/// Policies are decoded (List 8 shape) from the data graph itself and,
/// when `--policies` is given, from that file too. Exit code: `0` pass,
/// `2` error-level findings, `3` warnings rejected by `--deny-warnings`.
fn cmd_lint(args: &[String]) -> Result<(String, u8), String> {
    use grdf::security::{Policy, PolicySet};

    let mut file: Option<&str> = None;
    let mut policies_path: Option<&str> = None;
    let mut format = "text";
    let mut deny_warnings = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--policies" => {
                i += 1;
                policies_path = Some(args.get(i).ok_or("--policies needs a file")?);
            }
            "--format" => {
                i += 1;
                format = args.get(i).ok_or("--format needs text or json")?;
            }
            "--deny-warnings" => deny_warnings = true,
            flag if flag.starts_with("--") => return Err(format!("unknown lint flag {flag:?}")),
            f => {
                if file.replace(f).is_some() {
                    return Err("lint takes exactly one data file".to_string());
                }
            }
        }
        i += 1;
    }
    let file = file.ok_or("lint needs a data file")?;
    if format != "text" && format != "json" {
        return Err(format!("unknown lint format {format:?} (use text or json)"));
    }

    let store = load_store(file)?;
    let mut policies = Policy::decode_all(store.graph());
    if let Some(p) = policies_path {
        let pstore = load_store(p)?;
        policies.extend(Policy::decode_all(pstore.graph()));
    }
    let set = (!policies.is_empty()).then(|| PolicySet::new(policies));
    let report = grdf::lint::lint_all(store.graph(), set.as_ref());

    // With a policy set in hand, also prove the compiled label table
    // equivalent to the materialized secure views (the differential
    // verifier). A divergence is a gate failure, not a lint code: it
    // means the analyzer itself is out of sync with view semantics.
    let divergences = set.as_ref().map_or_else(Vec::new, |ps| {
        grdf::security::labels::LabelIr::compile(store.graph(), ps)
            .verify_label_equivalence(store.graph(), ps)
    });

    let mut output = match format {
        "json" => report.to_json(),
        _ => report.render_text(),
    };
    if !divergences.is_empty() && format == "text" {
        output.push_str("\nlabel/view divergence:\n");
        for d in &divergences {
            output.push_str("  ");
            output.push_str(d);
            output.push('\n');
        }
    }
    let code = if report.has_errors() || !divergences.is_empty() {
        2
    } else if deny_warnings && report.fails_gate(true) {
        3
    } else {
        0
    };
    Ok((output, code))
}

/// `labels explain|verify|stats` — inspect and prove the compiled label
/// table. Input is a data file (List-8 policies embedded or supplied via
/// `--policies`), or `--scenario` for the built-in §7.1 three-role
/// incident workload.
fn cmd_labels(args: &[String]) -> Result<(String, u8), String> {
    use grdf::rdf::term::Triple;
    use grdf::security::labels::LabelIr;
    use grdf::security::{Policy, PolicySet};

    let sub = args
        .first()
        .ok_or("labels needs a subcommand: explain, verify, or stats")?
        .as_str();
    let mut positional: Vec<&str> = Vec::new();
    let mut policies_path: Option<&str> = None;
    let mut scenario = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--policies" => {
                i += 1;
                policies_path = Some(args.get(i).ok_or("--policies needs a file")?);
            }
            "--scenario" => scenario = true,
            flag if flag.starts_with("--") => return Err(format!("unknown labels flag {flag:?}")),
            p => positional.push(p),
        }
        i += 1;
    }

    // Assemble the graph and policy set.
    let mut rest = positional.as_slice();
    let (graph, mut policies) = if scenario {
        let mut store = grdf::workload::incident::incident_store(30, 30, 11);
        store.materialize();
        (
            store.graph().clone(),
            grdf::workload::incident::scenario_policies().policies,
        )
    } else {
        let file = rest
            .first()
            .ok_or("labels needs a data file (or --scenario)")?;
        rest = &rest[1..];
        let mut store = load_store(file)?;
        store.materialize();
        let policies = Policy::decode_all(store.graph());
        (store.graph().clone(), policies)
    };
    if let Some(p) = policies_path {
        policies.extend(Policy::decode_all(load_store(p)?.graph()));
    }
    if policies.is_empty() {
        return Err("no List-8 policies found (embed them or pass --policies)".to_string());
    }
    let set = PolicySet::new(policies);
    let ir = LabelIr::compile(&graph, &set);

    match sub {
        "explain" => {
            let [role, s, p, o] = rest else {
                return Err(
                    "labels explain needs <role> <subject> <predicate> <object>".to_string()
                );
            };
            let triple = Triple::new(parse_cli_term(s), parse_cli_term(p), parse_cli_term(o));
            let role = parse_cli_term(role)
                .as_iri()
                .map(str::to_string)
                .ok_or_else(|| "role must be an IRI".to_string())?;
            let ex = ir.explain(&graph, &role, &triple);
            let code = u8::from(ex.leak.is_some()) * 2;
            Ok((ex.render(), code))
        }
        "verify" => {
            if !rest.is_empty() {
                return Err("labels verify takes no extra arguments".to_string());
            }
            let divergences = ir.verify_label_equivalence(&graph, &set);
            if divergences.is_empty() {
                Ok((
                    format!(
                        "label/view equivalence holds: {} role(s), {} labeled triple(s), \
                         {} label class(es)",
                        ir.width(),
                        ir.labels.len(),
                        ir.labels.class_count()
                    ),
                    0,
                ))
            } else {
                let mut out = format!("label/view divergence ({}):\n", divergences.len());
                for d in &divergences {
                    out.push_str("  ");
                    out.push_str(d);
                    out.push('\n');
                }
                Ok((out, 2))
            }
        }
        "stats" => {
            if !rest.is_empty() {
                return Err("labels stats takes no extra arguments".to_string());
            }
            use std::fmt::Write as _;
            let mut out = String::new();
            let _ = writeln!(out, "graph triples:   {}", graph.len());
            let _ = writeln!(out, "policies:        {}", set.policies.len());
            let _ = writeln!(out, "roles (bits):    {}", ir.width());
            let _ = writeln!(out, "labeled triples: {}", ir.labels.len());
            let _ = writeln!(out, "label classes:   {}", ir.labels.class_count());
            for role in &ir.roles {
                let auth = ir.authorizations(role);
                let visible = ir
                    .labels
                    .iter()
                    .filter(|(_, id)| ir.labels.class(*id).is_some_and(|b| b.intersects(&auth)))
                    .count();
                let _ = writeln!(out, "  {role}: {visible} visible triple(s)");
            }
            Ok((out, 0))
        }
        other => Err(format!(
            "unknown labels subcommand {other:?} (use explain, verify, or stats)"
        )),
    }
}

/// Parse a CLI term argument: `_:x` is a blank node, `"..."` a string
/// literal, anything else an IRI.
fn parse_cli_term(s: &str) -> grdf::rdf::term::Term {
    use grdf::rdf::term::Term;
    if let Some(label) = s.strip_prefix("_:") {
        Term::blank(label)
    } else if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        Term::string(&s[1..s.len() - 1])
    } else {
        Term::iri(s)
    }
}

/// `store init|verify|recover` — inspect and exercise the crash-safe
/// durability layer (`grdf-store`) against a directory of WAL segments
/// and checkpoints.
///
/// * `init <dir> <file>` seeds a fresh store: checkpoint 0 holds the
///   file's graph and whatever List-8 policies it embeds.
/// * `verify <dir>` walks every artifact and classifies its health
///   (per-record CRC status, torn tails vs interior corruption). Exit
///   `2` when any damage is found — even recoverable damage — so CI can
///   alarm on silent corruption; the verdict line says whether recovery
///   would still succeed.
/// * `recover <dir>` runs the real recovery path read-only and reports
///   what it reconstructed. Interior corruption fails closed (exit 1).
fn cmd_store(args: &[String]) -> Result<(String, u8), String> {
    use grdf::security::Policy;
    use grdf::store::{DurableStore, FsBackend, StoreConfig};

    let sub = args.first().ok_or("store needs a subcommand")?;
    let dir = args.get(1).ok_or("store needs a directory")?;
    let backend = FsBackend::open(dir).map_err(|e| format!("{dir}: {e}"))?;
    match sub.as_str() {
        "init" => {
            let file = args.get(2).ok_or("store init needs a data file")?;
            let data = load_store(file)?;
            let mut policy_graph = grdf::rdf::graph::Graph::new();
            let policies = Policy::decode_all(data.graph());
            for p in &policies {
                p.encode(&mut policy_graph);
            }
            let store = DurableStore::create(
                std::sync::Arc::new(backend),
                StoreConfig::default(),
                data.graph(),
                &policy_graph,
            )
            .map_err(|e| format!("{dir}: {e}"))?;
            Ok((
                format!(
                    "initialized {dir}: checkpoint 0 with {} triples, {} policies (run id {})",
                    data.graph().len(),
                    policies.len(),
                    store.run_id()
                ),
                0,
            ))
        }
        "verify" => {
            let mut format = "text";
            let mut json_out: Option<&str> = None;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--format" => {
                        i += 1;
                        format = args.get(i).ok_or("--format needs text or json")?;
                    }
                    "--json-out" => {
                        i += 1;
                        json_out = Some(args.get(i).ok_or("--json-out needs a path")?);
                    }
                    other => return Err(format!("unknown store verify flag {other:?}")),
                }
                i += 1;
            }
            let report = grdf::store::verify(&backend).map_err(|e| format!("{dir}: {e}"))?;
            if let Some(path) = json_out {
                std::fs::write(path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
            }
            let output = match format {
                "json" => report.to_json(),
                "text" => report.render(),
                other => return Err(format!("unknown store verify format {other:?}")),
            };
            let damaged = !report.recoverable
                || report.checkpoints.iter().any(|c| c.error.is_some())
                || report.wals.iter().any(|w| w.bad_records > 0 || w.torn);
            Ok((output, if damaged { 2 } else { 0 }))
        }
        "recover" => {
            let recovered = grdf::store::recover(&backend).map_err(|e| format!("{dir}: {e}"))?;
            let policies = Policy::decode_all(&recovered.policy_graph);
            Ok((
                format!(
                    "recovered from checkpoint {}: {} triples, {} policies\n\
                     replayed {} WAL batch(es) / {} op(s), truncated {} torn byte(s), \
                     skipped {} corrupt checkpoint(s)",
                    recovered.ckpt_seq,
                    recovered.base.len(),
                    policies.len(),
                    recovered.replayed_batches,
                    recovered.replayed_ops,
                    recovered.truncated_bytes,
                    recovered.skipped_checkpoints
                ),
                0,
            ))
        }
        other => Err(format!("unknown store subcommand {other:?}")),
    }
}

fn load_store(path: &str) -> Result<GrdfStore, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut store = GrdfStore::new();
    let lower = path.to_ascii_lowercase();
    let result = if lower.ends_with(".gml") {
        store.load_gml(&text).map(|_| ())
    } else if lower.ends_with(".ttl") || lower.ends_with(".turtle") {
        store.load_turtle(&text).map(|_| ())
    } else if lower.ends_with(".nt") {
        match grdf::rdf::ntriples::parse(&text) {
            Ok(g) => {
                store.merge_graph(&g);
                Ok(())
            }
            Err(e) => Err(grdf::core::store::StoreError::Rdf(e.to_string())),
        }
    } else if lower.ends_with(".rdf") || lower.ends_with(".xml") || lower.ends_with(".owl") {
        store.load_rdfxml(&text).map(|_| ())
    } else {
        // Fall back to trying Turtle, then RDF/XML.
        store
            .load_turtle(&text)
            .map(|_| ())
            .or_else(|_| store.load_rdfxml(&text).map(|_| ()))
    };
    result.map_err(|e| format!("{path}: {e}"))?;
    Ok(store)
}

fn emit(store: &GrdfStore, format: &str) -> Result<String, String> {
    match format {
        "turtle" | "ttl" => Ok(store.to_turtle()),
        "rdfxml" | "rdf" | "xml" => store.to_rdfxml().map_err(|e| e.to_string()),
        "gml" => Ok(store.to_gml()),
        "ntriples" | "nt" => Ok(grdf::rdf::ntriples::serialize(store.graph())),
        "nquads" | "nq" => Ok(store.to_dataset().to_nquads()),
        "trig" => Ok(store.to_dataset().to_trig(store.prefixes())),
        other => Err(format!("unknown output format {other:?}")),
    }
}

fn cmd_ontology(format: &str) -> Result<String, String> {
    let g = grdf_ontology();
    match format {
        "turtle" | "ttl" => Ok(grdf::rdf::turtle::serialize(&g, &PrefixMap::common())),
        "rdfxml" | "rdf" | "xml" => {
            grdf::rdf::rdfxml::serialize(&g, &PrefixMap::common()).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown output format {other:?}")),
    }
}

fn cmd_convert(path: &str, format: &str) -> Result<String, String> {
    let store = load_store(path)?;
    emit(&store, format)
}

fn cmd_query(path: &str, query: &str) -> Result<String, String> {
    let mut store = load_store(path)?;
    store.materialize();
    let text = if let Some(qfile) = query.strip_prefix('@') {
        std::fs::read_to_string(qfile).map_err(|e| format!("{qfile}: {e}"))?
    } else {
        query.to_string()
    };
    let result = store.query(&text).map_err(|e| e.to_string())?;
    Ok(render_result(&result))
}

fn render_result(result: &QueryResult) -> String {
    match result {
        QueryResult::Boolean(b) => b.to_string(),
        QueryResult::Graph(g) => grdf::rdf::turtle::serialize(g, &PrefixMap::common()),
        QueryResult::Select { vars, rows } => {
            let mut out = String::new();
            out.push_str(&vars.join("\t"));
            out.push('\n');
            for row in rows {
                let cells: Vec<String> = vars
                    .iter()
                    .map(|v| {
                        row.get(v)
                            .map(std::string::ToString::to_string)
                            .unwrap_or_default()
                    })
                    .collect();
                out.push_str(&cells.join("\t"));
                out.push('\n');
            }
            out.push_str(&format!("({} rows)", rows.len()));
            out
        }
    }
}

fn cmd_validate(path: &str) -> Result<String, String> {
    let mut store = load_store(path)?;
    let stats = store.materialize();
    match store.check() {
        Ok(()) => Ok(format!(
            "consistent ({} triples, {} inferred in {} passes)",
            store.len(),
            stats.inferred,
            stats.passes
        )),
        Err(grdf::core::store::StoreError::Inconsistent(violations)) => {
            let mut out = format!("INCONSISTENT: {} violation(s)\n", violations.len());
            for v in violations.iter().take(20) {
                out.push_str(&format!("  - {v}\n"));
            }
            Err(out)
        }
        Err(other) => Err(other.to_string()),
    }
}

fn cmd_stats(path: &str) -> Result<String, String> {
    let mut store = load_store(path)?;
    let before = store.len();
    let rs = store.materialize();
    let s = onto_stats(store.graph());
    Ok(format!(
        "triples (loaded):    {before}\n\
         triples (inferred):  {}\n\
         reasoner passes:     {}\n\
         classes:             {}\n\
         object properties:   {}\n\
         datatype properties: {}\n\
         features:            {}\n\
         sameAs identities:   {}",
        rs.inferred,
        rs.passes,
        s.classes,
        s.object_properties,
        s.datatype_properties,
        store.feature_count(),
        store.same_as_links().len(),
    ))
}

/// The probe role IRI used by `health` and `trace`.
const PROBE_ROLE: &str = "urn:grdf:health#probe";

/// Policies permitting the probe role on every class present in the data,
/// so probe requests exercise the full admission → view → query pipeline.
fn probe_policies(store: &GrdfStore) -> Vec<grdf::security::Policy> {
    use grdf::rdf::term::Term;
    use grdf::security::Policy;

    let mut types: Vec<String> = store
        .graph()
        .match_pattern(None, Some(&Term::iri(grdf::rdf::vocab::rdf::TYPE)), None)
        .into_iter()
        .filter_map(|t| t.object.as_iri().map(str::to_string))
        .collect();
    types.sort();
    types.dedup();
    types
        .iter()
        .enumerate()
        .map(|(i, ty)| Policy::permit(&format!("urn:grdf:health#p{i}"), PROBE_ROLE, ty))
        .collect()
}

/// Stand up G-SACS over the store's data with the given policies (or the
/// probe-role defaults when empty).
fn build_service(
    store: &GrdfStore,
    policies: Vec<grdf::security::Policy>,
    config: grdf::security::ResilienceConfig,
) -> grdf::security::GSacs {
    use grdf::security::gsacs::{GSacs, OntoRepository, OwlHorstEngine};
    use grdf::security::policy::PolicySet;

    let policies = if policies.is_empty() {
        probe_policies(store)
    } else {
        policies
    };
    GSacs::with_resilience(
        OntoRepository::new(),
        PolicySet::new(policies),
        Box::<OwlHorstEngine>::default(),
        store.graph().clone(),
        16,
        config,
    )
}

fn probe_service(
    store: &GrdfStore,
    config: grdf::security::ResilienceConfig,
) -> grdf::security::GSacs {
    build_service(store, Vec::new(), config)
}

/// Exit code for `health --check` / `metrics-check` gate failures.
const GATE_FAILED: u8 = 5;

/// `health <file | --from-json <file>> [--json] [--check]` — the same
/// `HealthReport` the server's `/health` endpoint serves, rendered for
/// humans or machines. `--from-json` gates on an already-scraped
/// `/health` body instead of building a local service (the CI
/// post-campaign health gate); `--check` exits nonzero when any declared
/// SLO is burning its error budget.
fn cmd_health(args: &[String]) -> Result<(String, u8), String> {
    use grdf::obs::{Objective, Obs, WindowConfig};
    use grdf::security::gsacs::ClientRequest;

    let mut file: Option<&str> = None;
    let mut from_json: Option<String> = None;
    let mut json = false;
    let mut check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--check" => check = true,
            "--from-json" => {
                i += 1;
                from_json = Some(args.get(i).ok_or("--from-json needs a file")?.clone());
            }
            flag if flag.starts_with("--") => return Err(format!("unknown health flag {flag:?}")),
            f => {
                if file.replace(f).is_some() {
                    return Err("health takes exactly one data file".to_string());
                }
            }
        }
        i += 1;
    }
    if let Some(path) = from_json {
        let body = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        // The report's only "state" fields are the slo entries, so a
        // burning objective is exactly this substring (stable JSON).
        let burning = body.contains("\"state\": \"burning\"");
        let code = if check && burning { GATE_FAILED } else { 0 };
        let out = if json {
            body
        } else {
            format!("slo gate: {}", if burning { "BURNING" } else { "ok" })
        };
        return Ok((out, code));
    }
    let store = load_store(file.ok_or("health needs a data file")?)?;
    let clock = grdf::runtime::system_clock();
    let config = grdf::security::ResilienceConfig {
        obs: Obs::new().with_windows(WindowConfig::default(), Arc::clone(&clock)),
        slos: vec![
            Objective::parse("wall: p99(gsacs.wall_us) < 250ms over 5m")?,
            Objective::parse("errors: rate(gsacs.errors) / rate(gsacs.requests) < 5% over 5m")?,
        ],
        ..grdf::security::ResilienceConfig::default()
    };
    let svc = probe_service(&store, config);
    // Smoke the pipeline twice so the report shows cache activity.
    let req = ClientRequest {
        role: PROBE_ROLE.to_string(),
        query: "ASK { ?s ?p ?o }".to_string(),
    };
    for _ in 0..2 {
        svc.handle(&req).map_err(|e| e.to_string())?;
    }
    let health = svc.health();
    let code = if check && health.slo_burning() {
        GATE_FAILED
    } else {
        0
    };
    if json {
        return Ok((health.to_json(), code));
    }
    let mut out = health.render();
    out.push_str("\n\nmetrics:\n");
    out.push_str(&svc.obs().registry().render());
    Ok((out, code))
}

fn cmd_trace(path: &str, query: &str) -> Result<String, String> {
    use grdf::obs::Obs;
    use grdf::security::gsacs::ClientRequest;
    use grdf::security::ResilienceConfig;

    let store = load_store(path)?;
    let text = if let Some(qfile) = query.strip_prefix('@') {
        std::fs::read_to_string(qfile).map_err(|e| format!("{qfile}: {e}"))?
    } else {
        query.to_string()
    };
    let obs = Obs::with_tracing(4096);
    let config = ResilienceConfig {
        obs: obs.clone(),
        ..ResilienceConfig::default()
    };
    // Build the service *inside* the CLI scope so construction-time spans
    // (reasoner materialization) land in the same trace as the request.
    let (outcome, decision) = {
        let _scope = obs.scope("cli.trace");
        let svc = probe_service(&store, config);
        let outcome = svc.handle(&ClientRequest {
            role: PROBE_ROLE.to_string(),
            query: text,
        });
        (outcome, svc.decision_trace_for(PROBE_ROLE))
    };
    let records = obs.sink().records();
    let trace = records.last().ok_or("no trace captured")?;
    let mut out = format!("trace {}\n", trace.id);
    out.push_str(&render_trace_tree(trace));
    match &outcome {
        Ok(result) => {
            out.push_str(&format!("\nresult:\n{}\n", render_result(result)));
        }
        Err(e) => out.push_str(&format!("\nrequest failed: {e}\n")),
    }
    match decision {
        Some(d) => out.push_str(&format!("\n{}", d.render())),
        None => out.push_str("\n(no decision trace: view never built)"),
    }
    Ok(out)
}

/// Indented per-stage timing tree, spans ordered by start time.
fn render_trace_tree(trace: &grdf::obs::TraceRecord) -> String {
    let mut spans: Vec<&grdf::obs::SpanRecord> = trace.spans.iter().collect();
    spans.sort_by_key(|s| (s.start_ns, s.depth));
    let mut out = String::new();
    for s in spans {
        let tags = if s.tags.is_empty() {
            String::new()
        } else {
            let pairs: Vec<String> = s.tags.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("  [{}]", pairs.join(" "))
        };
        out.push_str(&format!(
            "{:>10.3}ms  {}{}{}\n",
            s.dur_ns as f64 / 1e6,
            "  ".repeat(s.depth),
            s.name,
            tags
        ));
    }
    out
}

/// `serve <file> [flags]` — bind the multi-tenant HTTP layer over the
/// file's data and serve until killed (or until `--max-requests` have
/// been routed, for scripted runs). The listening address is printed and
/// flushed immediately so callers can scrape it before the first request.
fn cmd_serve(args: &[String]) -> Result<(String, u8), String> {
    use grdf::obs::Obs;
    use grdf::security::{Policy, ResilienceConfig};
    use grdf::server::{GrdfServer, QuotaConfig, ServerConfig};
    use std::io::Write;

    let mut file: Option<&str> = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut policies_path: Option<&str> = None;
    let mut allow_probe = false;
    let mut cfg = ServerConfig::default();
    let mut quota = QuotaConfig::default();
    let mut max_requests: Option<u64> = None;
    let mut trace_capacity: usize = 256;
    let mut slo_specs: Vec<String> = Vec::new();
    let mut no_slo = false;
    let mut profile_interval = std::time::Duration::from_millis(10);
    let mut no_profile = false;
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> Result<&String, String> {
            *i += 1;
            args.get(*i)
                .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--addr" => addr.clone_from(flag_value(&mut i)?),
            "--policies" => policies_path = Some(flag_value(&mut i)?.as_str()),
            "--allow-probe" => allow_probe = true,
            "--workers" => {
                cfg.workers = flag_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--max-conns" => {
                cfg.max_connections = flag_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--quota-rps" => {
                quota.rate_per_sec = flag_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--quota-rps: {e}"))?;
            }
            "--quota-burst" => {
                quota.burst = flag_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--quota-burst: {e}"))?;
            }
            "--deadline-ms" => {
                let ms: u64 = flag_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                cfg.default_deadline = std::time::Duration::from_millis(ms);
            }
            "--max-requests" => {
                max_requests = Some(
                    flag_value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--max-requests: {e}"))?,
                );
            }
            "--trace-capacity" => {
                trace_capacity = flag_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--trace-capacity: {e}"))?;
            }
            "--slo" => slo_specs.push(flag_value(&mut i)?.clone()),
            "--no-slo" => no_slo = true,
            "--tenant-cap" => {
                cfg.tenant_cap = flag_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--tenant-cap: {e}"))?;
            }
            "--profile-interval-ms" => {
                let ms: u64 = flag_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--profile-interval-ms: {e}"))?;
                profile_interval = std::time::Duration::from_millis(ms.max(1));
            }
            "--no-profile" => no_profile = true,
            flag if flag.starts_with("--") => return Err(format!("unknown serve flag {flag:?}")),
            f => {
                if file.replace(f).is_some() {
                    return Err("serve takes exactly one data file".to_string());
                }
            }
        }
        i += 1;
    }
    cfg.quota = quota;
    let store = load_store(file.ok_or("serve needs a data file")?)?;
    let mut policies = Vec::new();
    if let Some(p) = policies_path {
        policies = Policy::decode_all(load_store(p)?.graph());
        if policies.is_empty() {
            return Err(format!("{p}: no policies found (List 8 shape expected)"));
        }
        if allow_probe {
            policies.extend(probe_policies(&store));
        }
    }
    // SLO objectives: the defaults guard server latency and 5xx ratio;
    // `--slo` replaces them, `--no-slo` disables the engine entirely.
    let slos = if no_slo {
        Vec::new()
    } else if slo_specs.is_empty() {
        vec![
            grdf::obs::Objective::parse("latency: p99(server.latency) < 250ms over 5m")?,
            grdf::obs::Objective::parse(
                "errors: rate(server.errors) / rate(server.requests) < 5% over 5m",
            )?,
        ]
    } else {
        slo_specs
            .iter()
            .map(|s| grdf::obs::Objective::parse(s))
            .collect::<Result<Vec<_>, _>>()?
    };
    let mut obs = if trace_capacity > 0 {
        Obs::with_tracing(trace_capacity)
    } else {
        Obs::new()
    };
    // Windowed metrics back both the SLO engine and the per-tenant
    // `/metrics` gauges; the profiler runs continuously unless disabled.
    obs = obs.with_windows(grdf::obs::WindowConfig::default(), Arc::clone(&cfg.clock));
    if !no_profile {
        obs = obs.with_profiler(profile_interval, Arc::clone(&cfg.clock));
    }
    let config = ResilienceConfig {
        obs,
        slos,
        ..ResilienceConfig::default()
    };
    let svc = build_service(&store, policies, config);
    let server = GrdfServer::bind(addr.as_str(), svc, cfg).map_err(|e| format!("{addr}: {e}"))?;
    println!("listening on http://{}", server.local_addr());
    let _ = std::io::stdout().flush();
    match max_requests {
        Some(n) => {
            while server.requests_total() < n {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            let requests = server.requests_total();
            let (accepted, finished) = server.shutdown();
            Ok((
                format!(
                    "served {requests} request(s); {finished}/{accepted} connection(s) drained"
                ),
                0,
            ))
        }
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(1));
        },
    }
}

/// `client <url> [flags]` — one zero-dependency HTTP/1.1 request against
/// a running server. Prints the status line and body; exit code 0 for a
/// 2xx response, 4 otherwise.
fn cmd_client(args: &[String]) -> Result<(String, u8), String> {
    use std::io::{Read, Write};

    let mut url: Option<&str> = None;
    let mut method: Option<String> = None;
    let mut body = Vec::new();
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> Result<&String, String> {
            *i += 1;
            args.get(*i)
                .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--method" => method = Some(flag_value(&mut i)?.to_ascii_uppercase()),
            "--role" => headers.push(("x-role".into(), flag_value(&mut i)?.clone())),
            "--tenant" => headers.push(("x-tenant".into(), flag_value(&mut i)?.clone())),
            "--deadline-ms" => headers.push(("deadline-ms".into(), flag_value(&mut i)?.clone())),
            "--trace-id" => headers.push(("x-trace-id".into(), flag_value(&mut i)?.clone())),
            "--body" => {
                let v = flag_value(&mut i)?;
                body = if let Some(path) = v.strip_prefix('@') {
                    std::fs::read(path).map_err(|e| format!("{path}: {e}"))?
                } else {
                    v.clone().into_bytes()
                };
            }
            flag if flag.starts_with("--") => return Err(format!("unknown client flag {flag:?}")),
            u => {
                if url.replace(u).is_some() {
                    return Err("client takes exactly one URL".to_string());
                }
            }
        }
        i += 1;
    }
    let url = url.ok_or("client needs a URL")?;
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("unsupported URL {url:?} (http:// only)"))?;
    let (authority, path) = match rest.split_once('/') {
        Some((a, p)) => (a, format!("/{p}")),
        None => (rest, "/".to_string()),
    };
    let method = method.unwrap_or_else(|| if body.is_empty() { "GET" } else { "POST" }.to_string());
    let mut wire = format!("{method} {path} HTTP/1.1\r\nhost: {authority}\r\n").into_bytes();
    for (name, value) in &headers {
        wire.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    wire.extend_from_slice(
        format!(
            "content-length: {}\r\nconnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    wire.extend_from_slice(&body);

    let mut stream =
        std::net::TcpStream::connect(authority).map_err(|e| format!("{authority}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(&wire)
        .map_err(|e| format!("{authority}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("{authority}: {e}"))?;
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("malformed response: no header terminator")?;
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let status_line = head.lines().next().unwrap_or_default().to_string();
    let code: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let resp_body = String::from_utf8_lossy(&raw[head_end + 4..]);
    Ok((
        format!("{status_line}\n{resp_body}"),
        if (200..300).contains(&code) { 0 } else { 4 },
    ))
}

/// `chaos <addr> [--seed N] [--cases N]` — run the seeded socket-fault
/// campaign against a *running* server and report per-fault outcomes.
/// Exit code 2 when any case violates the teardown invariant.
fn cmd_chaos(args: &[String]) -> Result<(String, u8), String> {
    use grdf::runtime::SeededDecider;
    use grdf::server::{build_request, run_case};
    use std::collections::BTreeMap;
    use std::net::ToSocketAddrs;

    let mut addr: Option<&str> = None;
    let mut seed: u64 = 42;
    let mut cases: u64 = 50;
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> Result<&String, String> {
            *i += 1;
            args.get(*i)
                .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--seed" => {
                seed = flag_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--cases" => {
                cases = flag_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown chaos flag {flag:?}")),
            a => {
                if addr.replace(a).is_some() {
                    return Err("chaos takes exactly one address".to_string());
                }
            }
        }
        i += 1;
    }
    let addr = addr.ok_or("chaos needs a server address (host:port)")?;
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("{addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr}: no usable address"))?;
    let decider = SeededDecider::new(seed);
    let request = build_request("/query", &[("x-role", PROBE_ROLE)], b"ASK { ?s ?p ?o }");
    let mut by_fault: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut violations = 0u64;
    for n in 0..cases {
        let outcome = run_case(
            addr,
            &decider,
            n,
            &request,
            std::time::Duration::from_secs(2),
        )
        .map_err(|e| format!("case {n}: {e}"))?;
        let entry = by_fault.entry(format!("{:?}", outcome.fault)).or_default();
        entry.0 += 1;
        if !outcome.ok {
            entry.1 += 1;
            violations += 1;
        }
    }
    let mut out = format!("chaos campaign: seed {seed}, {cases} case(s)\n");
    for (fault, (total, bad)) in &by_fault {
        out.push_str(&format!(
            "  {fault:<22} {total:>4} case(s), {bad} violation(s)\n"
        ));
    }
    out.push_str(&if violations == 0 {
        "PASS: every fault ended in clean teardown or a well-formed response".to_string()
    } else {
        format!("FAIL: {violations} torn/ill-formed response(s)")
    });
    Ok((out, if violations == 0 { 0 } else { 2 }))
}

/// `sim [--seed N] [--steps N] [--quick] [--replay] [--shrink] [--bug B]
/// [--swarm N] [--out DIR] [--json]` — the deterministic whole-system
/// simulation (DESIGN.md §16).
///
/// Single-seed mode runs one schedule and reports the verdict; `--replay`
/// runs it twice and proves the fingerprint (verdict, graph hash, audit
/// length) is bit-identical; `--shrink` greedily minimizes a failing
/// schedule. `--swarm N` sweeps N consecutive seeds (the CI `sim-swarm`
/// job), persisting every failure as `{master_seed, step_count}` JSON
/// plus a shrunk counterexample under `--out`. Exit code 2 when any
/// oracle was violated.
fn cmd_sim(args: &[String]) -> Result<(String, u8), String> {
    use grdf::runtime::SeedTree;
    use grdf::sim::{run, shrink_seed, SimConfig};

    let mut seed = SeedTree::from_env("GRDF_MASTER_SEED", 0x51D_BA5E).master();
    let mut steps: Option<usize> = None;
    let mut quick = false;
    let mut replay = false;
    let mut do_shrink = false;
    let mut bug: Option<grdf::sim::Bug> = None;
    let mut swarm: Option<u64> = None;
    let mut out_dir: Option<String> = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> Result<&String, String> {
            *i += 1;
            args.get(*i)
                .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--seed" => {
                let v = flag_value(&mut i)?;
                seed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => {
                        u64::from_str_radix(hex, 16).map_err(|e| format!("--seed: {e}"))?
                    }
                    None => v.parse().map_err(|e| format!("--seed: {e}"))?,
                };
            }
            "--steps" => {
                steps = Some(
                    flag_value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--steps: {e}"))?,
                );
            }
            "--quick" => quick = true,
            "--replay" => replay = true,
            "--shrink" => do_shrink = true,
            "--bug" => bug = Some(flag_value(&mut i)?.parse()?),
            "--swarm" => {
                swarm = Some(
                    flag_value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--swarm: {e}"))?,
                );
            }
            "--out" => out_dir = Some(flag_value(&mut i)?.clone()),
            "--json" => json = true,
            other => return Err(format!("unknown sim flag {other:?}")),
        }
        i += 1;
    }
    let steps = steps.unwrap_or(if quick { 60 } else { 120 });
    let config_for = |master: u64| {
        let mut c = SimConfig::new(master, steps);
        c.bug = bug;
        c
    };
    let persist_failure = |dir: &str, config: &SimConfig| -> Result<String, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
        let report = run(config);
        let case = format!(
            "{}/seed-{:016x}.json",
            dir.trim_end_matches('/'),
            config.master_seed
        );
        std::fs::write(&case, report.to_json()).map_err(|e| format!("{case}: {e}"))?;
        let mut wrote = format!("wrote {case}");
        if let Some(shrunk) = shrink_seed(config) {
            let min = format!(
                "{}/seed-{:016x}.shrunk.txt",
                dir.trim_end_matches('/'),
                config.master_seed
            );
            std::fs::write(&min, shrunk.render()).map_err(|e| format!("{min}: {e}"))?;
            wrote.push_str(&format!(", {min}"));
        }
        Ok(wrote)
    };

    if let Some(count) = swarm {
        let mut out = format!(
            "sim swarm: seeds {seed}..{} ({steps} step(s) each)\n",
            seed + count
        );
        let mut failures = 0u64;
        for k in 0..count {
            let config = config_for(seed.wrapping_add(k));
            let report = run(&config);
            if report.passed() {
                continue;
            }
            failures += 1;
            out.push_str(&format!(
                "FAIL seed {:#x}: {} violation(s); replay: grdf-cli sim --seed {:#x} --steps {}\n",
                config.master_seed,
                report.violations.len(),
                config.master_seed,
                steps
            ));
            for v in &report.violations {
                out.push_str(&format!("  {v}\n"));
            }
            if let Some(dir) = &out_dir {
                out.push_str(&format!("  {}\n", persist_failure(dir, &config)?));
            }
        }
        out.push_str(&if failures == 0 {
            format!("PASS: {count} seed(s), every oracle held")
        } else {
            format!("FAIL: {failures}/{count} seed(s) violated oracles")
        });
        return Ok((out, u8::from(failures > 0) * 2));
    }

    let config = config_for(seed);
    let report = run(&config);
    let mut out = if json {
        report.to_json()
    } else {
        let mut s = format!(
            "sim: seed {:#x}, {} step(s), {} fault event(s)\n\
             acked {} update(s), denied {}, {} recover(ies), {} audit line(s), graph {:016x}\n",
            report.master_seed,
            report.steps,
            report.faults_enabled,
            report.acked,
            report.denied,
            report.recoveries,
            report.audit_total,
            report.graph_hash
        );
        if report.passed() {
            s.push_str("PASS: every oracle held");
        } else {
            s.push_str(&format!("FAIL: {} violation(s)", report.violations.len()));
            for v in &report.violations {
                s.push_str(&format!("\n  {v}"));
            }
        }
        s
    };
    if replay {
        let again = run(&config);
        if again.fingerprint() == report.fingerprint() {
            out.push_str("\nreplay: bit-identical (verdict, graph hash, audit length)");
        } else {
            out.push_str(&format!(
                "\nreplay: DIVERGED — {:?} vs {:?}",
                report.fingerprint(),
                again.fingerprint()
            ));
            return Ok((out, 2));
        }
    }
    if !report.passed() {
        if let Some(shrunk) = do_shrink.then(|| shrink_seed(&config)).flatten() {
            out.push('\n');
            out.push_str(&shrunk.render());
        }
        if let Some(dir) = &out_dir {
            out.push('\n');
            out.push_str(&persist_failure(dir, &config)?);
        }
        return Ok((out, 2));
    }
    Ok((out, 0))
}

/// One plain HTTP/1.1 GET; returns `(status, body)`.
fn http_get(authority: &str, path: &str) -> Result<(u16, String), String> {
    use std::io::{Read, Write};

    let mut stream =
        std::net::TcpStream::connect(authority).map_err(|e| format!("{authority}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nhost: {authority}\r\nconnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| format!("{authority}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("{authority}: {e}"))?;
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("malformed response: no header terminator")?;
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|c| c.parse().ok())
        .ok_or("malformed status line")?;
    Ok((
        status,
        String::from_utf8_lossy(&raw[head_end + 4..]).into_owned(),
    ))
}

/// `top <addr> [--iterations N] [--interval-ms N]` — poll a running
/// server's `/metrics` exposition and tabulate per-tenant QPS (trailing
/// minute), windowed p99 latency, and sheds, with an SLO burn-rate
/// footer. One frame per iteration.
fn cmd_top(args: &[String]) -> Result<(String, u8), String> {
    use grdf::obs::expo;

    let mut addr: Option<&str> = None;
    let mut iterations: u32 = 1;
    let mut interval = std::time::Duration::from_secs(1);
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> Result<&String, String> {
            *i += 1;
            args.get(*i)
                .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--iterations" => {
                iterations = flag_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--iterations: {e}"))?;
            }
            "--interval-ms" => {
                let ms: u64 = flag_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?;
                interval = std::time::Duration::from_millis(ms);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown top flag {flag:?}")),
            a => {
                if addr.replace(a).is_some() {
                    return Err("top takes exactly one address".to_string());
                }
            }
        }
        i += 1;
    }
    let addr = addr.ok_or("top needs a server address (host:port)")?;
    let authority = addr.strip_prefix("http://").unwrap_or(addr);
    let mut out = String::new();
    for frame in 0..iterations.max(1) {
        if frame > 0 {
            std::thread::sleep(interval);
            out.push('\n');
        }
        let (status, body) = http_get(authority, "/metrics")?;
        if status != 200 {
            return Err(format!("{authority}/metrics returned {status}"));
        }
        let parsed = expo::parse(&body).map_err(|e| format!("/metrics is nonconformant: {e}"))?;
        out.push_str(&render_top_frame(&parsed));
    }
    Ok((out, 0))
}

/// One `top` frame from a parsed exposition.
fn render_top_frame(parsed: &grdf::obs::expo::Exposition) -> String {
    let mut out = String::new();
    let mut tenants: Vec<&str> = parsed
        .named("grdf_w1m_server_requests")
        .iter()
        .filter_map(|s| s.label("tenant"))
        .collect();
    tenants.sort_unstable();
    tenants.dedup();
    out.push_str(&format!(
        "{:<20} {:>8} {:>10} {:>8}\n",
        "TENANT", "QPS", "P99(ms)", "SHED"
    ));
    for tenant in tenants {
        let qps = parsed
            .value_with("grdf_w1m_server_requests", "tenant", tenant)
            .unwrap_or(0.0)
            / 60.0;
        let p99_ms = parsed
            .value_with("grdf_w1m_server_latency_p99", "tenant", tenant)
            .unwrap_or(0.0)
            / 1000.0;
        let shed = parsed
            .value_with("grdf_w1m_server_shed", "tenant", tenant)
            .unwrap_or(0.0);
        out.push_str(&format!(
            "{tenant:<20} {qps:>8.2} {p99_ms:>10.2} {shed:>8.0}\n"
        ));
    }
    let objectives = parsed.named("grdf_slo_burn_fast");
    if !objectives.is_empty() {
        out.push_str("slo:\n");
        for s in objectives {
            let Some(name) = s.label("objective") else {
                continue;
            };
            let slow = parsed
                .value_with("grdf_slo_burn_slow", "objective", name)
                .unwrap_or(0.0);
            let burning = parsed
                .value_with("grdf_slo_burning", "objective", name)
                .unwrap_or(0.0)
                > 0.0;
            out.push_str(&format!(
                "  {:<16} burn {:.2}/{:.2} [{}]\n",
                name,
                s.value,
                slow,
                if burning { "BURNING" } else { "ok" }
            ));
        }
    }
    out
}

/// `metrics-check <file>` — the CI format-conformance gate: parse a
/// scraped Prometheus exposition and fail (exit 2) on any violation.
fn cmd_metrics_check(args: &[String]) -> Result<(String, u8), String> {
    let [file] = args else {
        return Err("metrics-check takes exactly one scraped /metrics file".to_string());
    };
    let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    match grdf::obs::expo::parse(&text) {
        Ok(parsed) => Ok((
            format!(
                "ok: {} sample(s) across {} declared famil(ies)",
                parsed.samples.len(),
                parsed.families.len()
            ),
            0,
        )),
        Err(e) => Ok((format!("nonconformant exposition: {e}"), 2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `run`, discarding the exit code (for commands where only the text
    /// matters).
    fn run_text(args: &[String]) -> Result<String, String> {
        run(args).map(|(s, _)| s)
    }

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("grdf-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().to_string()
    }

    const TTL: &str = r#"@prefix app: <http://grdf.org/app#> .
@prefix grdf: <http://grdf.org/ontology#> .
app:s1 a app:ChemSite ; app:hasSiteName "NT Energy" .
"#;

    #[test]
    fn ontology_emits_turtle_and_rdfxml() {
        let ttl = run_text(&["ontology".into()]).unwrap();
        assert!(ttl.contains("grdf:Feature"));
        let xml = run_text(&["ontology".into(), "rdfxml".into()]).unwrap();
        assert!(xml.contains("<rdf:RDF"));
        assert!(run_text(&["ontology".into(), "wat".into()]).is_err());
    }

    #[test]
    fn convert_turtle_to_ntriples() {
        let path = write_temp("data.ttl", TTL);
        let nt = run_text(&["convert".into(), path, "nt".into()]).unwrap();
        assert!(nt.contains("<http://grdf.org/app#s1>"), "{nt}");
    }

    #[test]
    fn query_selects_rows() {
        let path = write_temp("q.ttl", TTL);
        let out = run_text(&[
            "query".into(),
            path,
            "PREFIX app: <http://grdf.org/app#> SELECT ?n WHERE { ?s app:hasSiteName ?n }".into(),
        ])
        .unwrap();
        assert!(out.contains("NT Energy"), "{out}");
        assert!(out.contains("(1 rows)"), "{out}");
    }

    #[test]
    fn query_from_file() {
        let data = write_temp("qf.ttl", TTL);
        let qfile = write_temp("query.rq", "ASK { ?s ?p ?o }");
        let out = run_text(&["query".into(), data, format!("@{qfile}")]).unwrap();
        assert_eq!(out, "true");
    }

    #[test]
    fn validate_reports_consistency() {
        let good = write_temp("good.ttl", TTL);
        let out = run_text(&["validate".into(), good]).unwrap();
        assert!(out.starts_with("consistent"), "{out}");

        let bad = write_temp(
            "bad.ttl",
            "@prefix grdf: <http://grdf.org/ontology#> .\n<urn:x> a grdf:Point , grdf:Node .",
        );
        let err = run_text(&["validate".into(), bad]).unwrap_err();
        assert!(err.contains("INCONSISTENT"), "{err}");
    }

    #[test]
    fn stats_summarizes() {
        let path = write_temp("stats.ttl", TTL);
        let out = run_text(&["stats".into(), path]).unwrap();
        assert!(out.contains("features:"), "{out}");
        assert!(out.contains("classes:"), "{out}");
    }

    #[test]
    fn health_reports_service_state() {
        let path = write_temp("health.ttl", TTL);
        let out = run_text(&["health".into(), path]).unwrap();
        assert!(out.contains("reasoner:"), "{out}");
        assert!(out.contains("breaker:"), "{out}");
        assert!(out.contains("closed"), "{out}");
        assert!(
            out.contains("1 hits"),
            "cache hit from the repeated probe: {out}"
        );
    }

    #[test]
    fn health_json_matches_the_server_renderer() {
        let path = write_temp("health_json.ttl", TTL);
        let (out, code) = run(&["health".into(), path, "--json".into()]).unwrap();
        assert_eq!(code, 0);
        assert!(out.starts_with('{') && out.ends_with('}'), "{out}");
        for field in [
            "\"reasoner\":",
            "\"breaker\":",
            "\"requests\":",
            "\"p99_us\":",
        ] {
            assert!(out.contains(field), "missing {field} in {out}");
        }
    }

    #[test]
    fn server_commands_reject_bad_usage() {
        assert!(run_text(&["serve".into()]).is_err());
        assert!(run_text(&["serve".into(), "a.ttl".into(), "--frob".into()]).is_err());
        assert!(run_text(&["serve".into(), "a.ttl".into(), "--workers".into()]).is_err());
        assert!(run_text(&["client".into()]).is_err());
        assert!(run_text(&["client".into(), "ftp://x/".into()]).is_err());
        assert!(run_text(&["chaos".into()]).is_err());
        assert!(run_text(&["chaos".into(), "not-an-addr".into()]).is_err());
        assert!(run_text(&["health".into(), "a.ttl".into(), "--frob".into()]).is_err());
    }

    #[test]
    fn errors_for_bad_usage() {
        assert!(run_text(&[]).is_err());
        assert!(run_text(&["frobnicate".into()]).is_err());
        assert!(run_text(&["convert".into()]).is_err());
        assert!(run_text(&["query".into(), "nonexistent.ttl".into(), "ASK {}".into()]).is_err());
        assert!(run_text(&["lint".into()]).is_err());
        assert!(run_text(&[
            "lint".into(),
            "a.ttl".into(),
            "--format".into(),
            "yaml".into()
        ])
        .is_err());
        assert!(run_text(&["lint".into(), "a.ttl".into(), "--frob".into()]).is_err());
    }

    #[test]
    fn lint_clean_data_passes() {
        let path = write_temp("lint_clean.ttl", TTL);
        let (out, code) = run(&["lint".into(), path]).unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("0 error(s)"), "{out}");
    }

    #[test]
    fn lint_reports_errors_with_exit_code_2() {
        // measureValue is declared with range xsd:double in the GRDF
        // ontology; a string value is the List 1 MeasureType problem.
        let bad = write_temp(
            "lint_bad.ttl",
            "@prefix grdf: <http://grdf.org/ontology#> .\n\
             @prefix app: <http://grdf.org/app#> .\n\
             app:v1 a grdf:Value ; grdf:measureValue \"10.5mp\" .",
        );
        let (out, code) = run(&["lint".into(), bad.clone()]).unwrap();
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("G006"), "{out}");
        let (json, code) = run(&["lint".into(), bad, "--format".into(), "json".into()]).unwrap();
        assert_eq!(code, 2);
        assert!(json.starts_with("{\"version\":2"), "{json}");
        assert!(json.contains("\"tool_version\""), "{json}");
        assert!(json.contains("\"codes\":[\"G006\"]"), "{json}");
        assert!(json.contains("\"code\":\"G006\""), "{json}");
    }

    #[test]
    fn lint_deny_warnings_rejects_with_exit_code_3() {
        // An edge realized next to one that is not: T001, a warning.
        let warn = write_temp(
            "lint_warn.ttl",
            "@prefix grdf: <http://grdf.org/ontology#> .\n\
             @prefix app: <http://grdf.org/app#> .\n\
             app:n1 a grdf:Node . app:n2 a grdf:Node .\n\
             app:e1 a grdf:Edge ; grdf:startNode app:n1 ; grdf:endNode app:n2 ;\n\
                    grdf:realizedBy app:c1 .\n\
             app:e2 a grdf:Edge ; grdf:startNode app:n2 ; grdf:endNode app:n1 .\n\
             app:c1 a grdf:Curve .",
        );
        let (out, code) = run(&["lint".into(), warn.clone()]).unwrap();
        assert_eq!(code, 0, "warnings pass by default: {out}");
        assert!(out.contains("T001"), "{out}");
        let (_, code) = run(&["lint".into(), warn, "--deny-warnings".into()]).unwrap();
        assert_eq!(code, 3);
    }

    #[test]
    fn lint_separate_policy_file() {
        use grdf::rdf::graph::Graph;
        use grdf::security::Policy;
        // Encode a structurally-broken policy (empty role → S005) in the
        // List 8 RDF shape and lint it against clean data.
        let mut pg = Graph::new();
        Policy::permit(
            "http://grdf.org/security#bad",
            "",
            "http://grdf.org/app#ChemSite",
        )
        .encode(&mut pg);
        let pttl = write_temp("lint_policies.nt", &grdf::rdf::ntriples::serialize(&pg));
        let data = write_temp("lint_pdata.ttl", TTL);
        let (out, code) = run(&["lint".into(), data, "--policies".into(), pttl]).unwrap();
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("S005"), "{out}");
    }

    #[test]
    fn gml_input_detected_by_extension() {
        let gml = write_temp(
            "in.gml",
            r#"<gml:FeatureCollection xmlns:gml="http://www.opengis.net/gml" xmlns:app="http://grdf.org/app#">
              <gml:featureMember><app:Well gml:id="w1"><app:depth>12.5</app:depth></app:Well></gml:featureMember>
            </gml:FeatureCollection>"#,
        );
        let out = run_text(&["convert".into(), gml, "turtle".into()]).unwrap();
        assert!(out.contains("app:w1"), "{out}");
    }
}
