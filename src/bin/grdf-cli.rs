//! `grdf-cli` — command-line front end for the GRDF library.
//!
//! ```text
//! grdf-cli ontology [turtle|rdfxml]             emit the GRDF ontology
//! grdf-cli convert  <file> [turtle|rdfxml|gml]  convert between formats
//! grdf-cli query    <file> <sparql>             run a query (use @file for the query text)
//! grdf-cli validate <file>                      materialize + OWL consistency check
//! grdf-cli stats    <file>                      triple/feature/identity statistics
//! grdf-cli health   <file>                      stand up G-SACS over the data and report service health
//! grdf-cli trace    <file> <sparql>             run a query through G-SACS with tracing on; print the
//!                                               per-stage timing tree and the access-decision trace
//! ```
//!
//! Input format is detected from the extension: `.gml`, `.ttl`/`.turtle`,
//! `.rdf`/`.xml`/`.owl` (RDF/XML), `.nt` (N-Triples).

use std::process::ExitCode;

use grdf::core::ontology::{grdf_ontology, stats as onto_stats};
use grdf::core::store::GrdfStore;
use grdf::query::QueryResult;
use grdf::rdf::PrefixMap;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  grdf-cli ontology [turtle|rdfxml]
  grdf-cli convert  <file> [turtle|rdfxml|gml]
  grdf-cli query    <file> <sparql | @queryfile>
  grdf-cli validate <file>
  grdf-cli stats    <file>
  grdf-cli health   <file>
  grdf-cli trace    <file> <sparql | @queryfile>";

/// Run a CLI invocation; returns the text to print.
fn run(args: &[String]) -> Result<String, String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "ontology" => cmd_ontology(args.get(1).map(String::as_str).unwrap_or("turtle")),
        "convert" => {
            let file = args.get(1).ok_or("convert needs an input file")?;
            let format = args.get(2).map(String::as_str).unwrap_or("turtle");
            cmd_convert(file, format)
        }
        "query" => {
            let file = args.get(1).ok_or("query needs a data file")?;
            let query = args.get(2).ok_or("query needs a query string")?;
            cmd_query(file, query)
        }
        "validate" => cmd_validate(args.get(1).ok_or("validate needs a data file")?),
        "stats" => cmd_stats(args.get(1).ok_or("stats needs a data file")?),
        "health" => cmd_health(args.get(1).ok_or("health needs a data file")?),
        "trace" => {
            let file = args.get(1).ok_or("trace needs a data file")?;
            let query = args.get(2).ok_or("trace needs a query string")?;
            cmd_trace(file, query)
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load_store(path: &str) -> Result<GrdfStore, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut store = GrdfStore::new();
    let lower = path.to_ascii_lowercase();
    let result = if lower.ends_with(".gml") {
        store.load_gml(&text).map(|_| ())
    } else if lower.ends_with(".ttl") || lower.ends_with(".turtle") {
        store.load_turtle(&text).map(|_| ())
    } else if lower.ends_with(".nt") {
        match grdf::rdf::ntriples::parse(&text) {
            Ok(g) => {
                store.merge_graph(&g);
                Ok(())
            }
            Err(e) => Err(grdf::core::store::StoreError::Rdf(e.to_string())),
        }
    } else if lower.ends_with(".rdf") || lower.ends_with(".xml") || lower.ends_with(".owl") {
        store.load_rdfxml(&text).map(|_| ())
    } else {
        // Fall back to trying Turtle, then RDF/XML.
        store
            .load_turtle(&text)
            .map(|_| ())
            .or_else(|_| store.load_rdfxml(&text).map(|_| ()))
    };
    result.map_err(|e| format!("{path}: {e}"))?;
    Ok(store)
}

fn emit(store: &GrdfStore, format: &str) -> Result<String, String> {
    match format {
        "turtle" | "ttl" => Ok(store.to_turtle()),
        "rdfxml" | "rdf" | "xml" => store.to_rdfxml().map_err(|e| e.to_string()),
        "gml" => Ok(store.to_gml()),
        "ntriples" | "nt" => Ok(grdf::rdf::ntriples::serialize(store.graph())),
        "nquads" | "nq" => Ok(store.to_dataset().to_nquads()),
        "trig" => Ok(store.to_dataset().to_trig(store.prefixes())),
        other => Err(format!("unknown output format {other:?}")),
    }
}

fn cmd_ontology(format: &str) -> Result<String, String> {
    let g = grdf_ontology();
    match format {
        "turtle" | "ttl" => Ok(grdf::rdf::turtle::serialize(&g, &PrefixMap::common())),
        "rdfxml" | "rdf" | "xml" => {
            grdf::rdf::rdfxml::serialize(&g, &PrefixMap::common()).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown output format {other:?}")),
    }
}

fn cmd_convert(path: &str, format: &str) -> Result<String, String> {
    let store = load_store(path)?;
    emit(&store, format)
}

fn cmd_query(path: &str, query: &str) -> Result<String, String> {
    let mut store = load_store(path)?;
    store.materialize();
    let text = if let Some(qfile) = query.strip_prefix('@') {
        std::fs::read_to_string(qfile).map_err(|e| format!("{qfile}: {e}"))?
    } else {
        query.to_string()
    };
    let result = store.query(&text).map_err(|e| e.to_string())?;
    Ok(render_result(&result))
}

fn render_result(result: &QueryResult) -> String {
    match result {
        QueryResult::Boolean(b) => b.to_string(),
        QueryResult::Graph(g) => grdf::rdf::turtle::serialize(g, &PrefixMap::common()),
        QueryResult::Select { vars, rows } => {
            let mut out = String::new();
            out.push_str(&vars.join("\t"));
            out.push('\n');
            for row in rows {
                let cells: Vec<String> = vars
                    .iter()
                    .map(|v| row.get(v).map(|t| t.to_string()).unwrap_or_default())
                    .collect();
                out.push_str(&cells.join("\t"));
                out.push('\n');
            }
            out.push_str(&format!("({} rows)", rows.len()));
            out
        }
    }
}

fn cmd_validate(path: &str) -> Result<String, String> {
    let mut store = load_store(path)?;
    let stats = store.materialize();
    match store.check() {
        Ok(()) => Ok(format!(
            "consistent ({} triples, {} inferred in {} passes)",
            store.len(),
            stats.inferred,
            stats.passes
        )),
        Err(grdf::core::store::StoreError::Inconsistent(violations)) => {
            let mut out = format!("INCONSISTENT: {} violation(s)\n", violations.len());
            for v in violations.iter().take(20) {
                out.push_str(&format!("  - {v}\n"));
            }
            Err(out)
        }
        Err(other) => Err(other.to_string()),
    }
}

fn cmd_stats(path: &str) -> Result<String, String> {
    let mut store = load_store(path)?;
    let before = store.len();
    let rs = store.materialize();
    let s = onto_stats(store.graph());
    Ok(format!(
        "triples (loaded):    {before}\n\
         triples (inferred):  {}\n\
         reasoner passes:     {}\n\
         classes:             {}\n\
         object properties:   {}\n\
         datatype properties: {}\n\
         features:            {}\n\
         sameAs identities:   {}",
        rs.inferred,
        rs.passes,
        s.classes,
        s.object_properties,
        s.datatype_properties,
        store.feature_count(),
        store.same_as_links().len(),
    ))
}

/// The probe role IRI used by `health` and `trace`.
const PROBE_ROLE: &str = "urn:grdf:health#probe";

/// Stand up G-SACS over the store's data with a probe role permitted on
/// every class present, so requests exercise the full admission → view →
/// query pipeline.
fn probe_service(
    store: &GrdfStore,
    config: grdf::security::ResilienceConfig,
) -> grdf::security::GSacs {
    use grdf::rdf::term::Term;
    use grdf::security::gsacs::{GSacs, OntoRepository, OwlHorstEngine};
    use grdf::security::policy::{Policy, PolicySet};

    let mut types: Vec<String> = store
        .graph()
        .match_pattern(None, Some(&Term::iri(grdf::rdf::vocab::rdf::TYPE)), None)
        .into_iter()
        .filter_map(|t| t.object.as_iri().map(str::to_string))
        .collect();
    types.sort();
    types.dedup();
    let policies = PolicySet::new(
        types
            .iter()
            .enumerate()
            .map(|(i, ty)| Policy::permit(&format!("urn:grdf:health#p{i}"), PROBE_ROLE, ty))
            .collect(),
    );
    GSacs::with_resilience(
        OntoRepository::new(),
        policies,
        Box::<OwlHorstEngine>::default(),
        store.graph().clone(),
        16,
        config,
    )
}

fn cmd_health(path: &str) -> Result<String, String> {
    use grdf::security::gsacs::ClientRequest;

    let store = load_store(path)?;
    let svc = probe_service(&store, grdf::security::ResilienceConfig::default());
    // Smoke the pipeline twice so the report shows cache activity.
    let req = ClientRequest {
        role: PROBE_ROLE.to_string(),
        query: "ASK { ?s ?p ?o }".to_string(),
    };
    for _ in 0..2 {
        svc.handle(&req).map_err(|e| e.to_string())?;
    }
    let mut out = svc.health().render();
    out.push_str("\n\nmetrics:\n");
    out.push_str(&svc.obs().registry().render());
    Ok(out)
}

fn cmd_trace(path: &str, query: &str) -> Result<String, String> {
    use grdf::obs::Obs;
    use grdf::security::gsacs::ClientRequest;
    use grdf::security::ResilienceConfig;

    let store = load_store(path)?;
    let text = if let Some(qfile) = query.strip_prefix('@') {
        std::fs::read_to_string(qfile).map_err(|e| format!("{qfile}: {e}"))?
    } else {
        query.to_string()
    };
    let obs = Obs::with_tracing(4096);
    let config = ResilienceConfig {
        obs: obs.clone(),
        ..ResilienceConfig::default()
    };
    // Build the service *inside* the CLI scope so construction-time spans
    // (reasoner materialization) land in the same trace as the request.
    let (outcome, decision) = {
        let _scope = obs.scope("cli.trace");
        let svc = probe_service(&store, config);
        let outcome = svc.handle(&ClientRequest {
            role: PROBE_ROLE.to_string(),
            query: text,
        });
        (outcome, svc.decision_trace_for(PROBE_ROLE))
    };
    let records = obs.sink().records();
    let trace = records.last().ok_or("no trace captured")?;
    let mut out = format!("trace {}\n", trace.id);
    out.push_str(&render_trace_tree(trace));
    match &outcome {
        Ok(result) => {
            out.push_str(&format!("\nresult:\n{}\n", render_result(result)));
        }
        Err(e) => out.push_str(&format!("\nrequest failed: {e}\n")),
    }
    match decision {
        Some(d) => out.push_str(&format!("\n{}", d.render())),
        None => out.push_str("\n(no decision trace: view never built)"),
    }
    Ok(out)
}

/// Indented per-stage timing tree, spans ordered by start time.
fn render_trace_tree(trace: &grdf::obs::TraceRecord) -> String {
    let mut spans: Vec<&grdf::obs::SpanRecord> = trace.spans.iter().collect();
    spans.sort_by_key(|s| (s.start_ns, s.depth));
    let mut out = String::new();
    for s in spans {
        let tags = if s.tags.is_empty() {
            String::new()
        } else {
            let pairs: Vec<String> = s.tags.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("  [{}]", pairs.join(" "))
        };
        out.push_str(&format!(
            "{:>10.3}ms  {}{}{}\n",
            s.dur_ns as f64 / 1e6,
            "  ".repeat(s.depth),
            s.name,
            tags
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("grdf-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().to_string()
    }

    const TTL: &str = r#"@prefix app: <http://grdf.org/app#> .
@prefix grdf: <http://grdf.org/ontology#> .
app:s1 a app:ChemSite ; app:hasSiteName "NT Energy" .
"#;

    #[test]
    fn ontology_emits_turtle_and_rdfxml() {
        let ttl = run(&["ontology".into()]).unwrap();
        assert!(ttl.contains("grdf:Feature"));
        let xml = run(&["ontology".into(), "rdfxml".into()]).unwrap();
        assert!(xml.contains("<rdf:RDF"));
        assert!(run(&["ontology".into(), "wat".into()]).is_err());
    }

    #[test]
    fn convert_turtle_to_ntriples() {
        let path = write_temp("data.ttl", TTL);
        let nt = run(&["convert".into(), path, "nt".into()]).unwrap();
        assert!(nt.contains("<http://grdf.org/app#s1>"), "{nt}");
    }

    #[test]
    fn query_selects_rows() {
        let path = write_temp("q.ttl", TTL);
        let out = run(&[
            "query".into(),
            path,
            "PREFIX app: <http://grdf.org/app#> SELECT ?n WHERE { ?s app:hasSiteName ?n }".into(),
        ])
        .unwrap();
        assert!(out.contains("NT Energy"), "{out}");
        assert!(out.contains("(1 rows)"), "{out}");
    }

    #[test]
    fn query_from_file() {
        let data = write_temp("qf.ttl", TTL);
        let qfile = write_temp("query.rq", "ASK { ?s ?p ?o }");
        let out = run(&["query".into(), data, format!("@{qfile}")]).unwrap();
        assert_eq!(out, "true");
    }

    #[test]
    fn validate_reports_consistency() {
        let good = write_temp("good.ttl", TTL);
        let out = run(&["validate".into(), good]).unwrap();
        assert!(out.starts_with("consistent"), "{out}");

        let bad = write_temp(
            "bad.ttl",
            "@prefix grdf: <http://grdf.org/ontology#> .\n<urn:x> a grdf:Point , grdf:Node .",
        );
        let err = run(&["validate".into(), bad]).unwrap_err();
        assert!(err.contains("INCONSISTENT"), "{err}");
    }

    #[test]
    fn stats_summarizes() {
        let path = write_temp("stats.ttl", TTL);
        let out = run(&["stats".into(), path]).unwrap();
        assert!(out.contains("features:"), "{out}");
        assert!(out.contains("classes:"), "{out}");
    }

    #[test]
    fn health_reports_service_state() {
        let path = write_temp("health.ttl", TTL);
        let out = run(&["health".into(), path]).unwrap();
        assert!(out.contains("reasoner:"), "{out}");
        assert!(out.contains("breaker:"), "{out}");
        assert!(out.contains("closed"), "{out}");
        assert!(
            out.contains("1 hits"),
            "cache hit from the repeated probe: {out}"
        );
    }

    #[test]
    fn errors_for_bad_usage() {
        assert!(run(&[]).is_err());
        assert!(run(&["frobnicate".into()]).is_err());
        assert!(run(&["convert".into()]).is_err());
        assert!(run(&["query".into(), "nonexistent.ttl".into(), "ASK {}".into()]).is_err());
    }

    #[test]
    fn gml_input_detected_by_extension() {
        let gml = write_temp(
            "in.gml",
            r#"<gml:FeatureCollection xmlns:gml="http://www.opengis.net/gml" xmlns:app="http://grdf.org/app#">
              <gml:featureMember><app:Well gml:id="w1"><app:depth>12.5</app:depth></app:Well></gml:featureMember>
            </gml:FeatureCollection>"#,
        );
        let out = run(&["convert".into(), gml, "turtle".into()]).unwrap();
        assert!(out.contains("app:w1"), "{out}");
    }
}
