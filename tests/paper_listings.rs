//! The paper's Lists 1–8, verbatim (modulo whitespace and the obvious
//! typographical fixes noted inline), parsed and checked for the meaning
//! the text ascribes to them. These tests pin the reproduction to the
//! paper's actual artifacts.

use grdf::lint::lint_graph;
use grdf::owl::consistency::check_consistency;
use grdf::owl::reasoner::Reasoner;
use grdf::rdf::term::Term;
use grdf::rdf::vocab::{owl, rdf, rdfs};
use grdf::security::policy::{Access, Action, Condition, Policy};

fn iri(s: &str) -> Term {
    Term::iri(s)
}

/// List 1 — `MeasureType`: an extension-of-double with a `uom` attribute.
/// (The listing shows the instance; the GML reader applies §3.2's mapping.)
#[test]
fn list1_measure_type() {
    let gml = r#"<app:Site xmlns:app="http://grdf.org/app#"
                  xmlns:gml="http://www.opengis.net/gml" gml:id="s1">
        <app:temperature uom="http://grdf.org/uom/farenheit">21.23</app:temperature>
    </app:Site>"#;
    let fc = grdf::gml::read::parse_gml(gml).unwrap();
    let site = &fc.features[0];
    // §3.2: "the most intuitive way to model XML extension constructs with
    // bases referring to built-in data types is by creating property with
    // range restriction set to the base type" — a double-valued property,
    // not a subclass of xsd:double.
    assert_eq!(
        site.property("temperature"),
        Some(&grdf::feature::Value::Double(21.23))
    );
    assert_eq!(
        site.property("temperatureUom").and_then(|v| v.as_str()),
        Some("http://grdf.org/uom/farenheit")
    );
    // The GRDF encoding of the listing holds up under the linter.
    let mut g = grdf::rdf::graph::Graph::new();
    grdf::feature::rdf_codec::encode_feature(&mut g, site);
    let report = lint_graph(&g);
    assert!(report.is_clean(), "{}", report.render_text());
}

/// List 2 — the geometric property declarations.
#[test]
fn list2_property_types() {
    let xml = r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                          xmlns:owl="http://www.w3.org/2002/07/owl#">
      <owl:ObjectProperty rdf:about="http://grdf.org/ontology#hasCenterLineOf"/>
      <owl:ObjectProperty rdf:about="http://grdf.org/ontology#hasCenterOf"/>
      <owl:ObjectProperty rdf:about="http://grdf.org/ontology#hasEdgeOf"/>
      <owl:ObjectProperty rdf:about="http://grdf.org/ontology#hasEnvelope"/>
      <owl:ObjectProperty rdf:about="http://grdf.org/ontology#hasExtentOf"/>
    </rdf:RDF>"#;
    let g = grdf::rdf::rdfxml::parse(xml).unwrap();
    assert_eq!(g.len(), 5);
    let report = lint_graph(&g);
    assert!(report.is_clean(), "{}", report.render_text());
    for p in [
        "hasCenterLineOf",
        "hasCenterOf",
        "hasEdgeOf",
        "hasEnvelope",
        "hasExtentOf",
    ] {
        assert!(g.has(
            &iri(&format!("http://grdf.org/ontology#{p}")),
            &iri(rdf::TYPE),
            &iri(owl::OBJECT_PROPERTY)
        ));
        // And the built ontology declares the same properties.
        let onto = grdf::core::ontology::grdf_ontology();
        assert!(onto.has(
            &iri(&format!("http://grdf.org/ontology#{p}")),
            &iri(rdf::TYPE),
            &iri(owl::OBJECT_PROPERTY)
        ));
    }
}

/// List 3 — `EnvelopeWithTimePeriod` with its cardinality-2 restriction on
/// `hasTimePosition`. (The paper's listing omits the Restriction close tags
/// and quotes; fixed here.)
#[test]
fn list3_envelope_with_time_period() {
    let xml = r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                          xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
                          xmlns:owl="http://www.w3.org/2002/07/owl#">
      <owl:Class rdf:about="http://grdf.org/ontology#EnvelopeWithTimePeriod">
        <rdfs:subClassOf>
          <owl:Restriction>
            <owl:cardinality rdf:datatype="http://www.w3.org/2001/XMLSchema#nonNegativeInteger">2</owl:cardinality>
            <owl:onProperty>
              <owl:ObjectProperty rdf:about="http://grdf.org/temporal#hasTimePosition"/>
            </owl:onProperty>
          </owl:Restriction>
        </rdfs:subClassOf>
      </owl:Class>
    </rdf:RDF>"#;
    let mut g = grdf::rdf::rdfxml::parse(xml).unwrap();
    // The restriction node is typed and carries the cardinality.
    let cls = iri("http://grdf.org/ontology#EnvelopeWithTimePeriod");
    let restriction = g.object(&cls, &iri(rdfs::SUB_CLASS_OF)).unwrap();
    let card = g.object(&restriction, &iri(owl::CARDINALITY)).unwrap();
    assert_eq!(card.as_literal().unwrap().as_integer(), Some(2));

    // Make it checkable: the restriction needs an explicit owl:Restriction
    // type for the validator (typed implicitly in the paper's prose).
    g.add(restriction.clone(), iri(rdf::TYPE), iri(owl::RESTRICTION));
    let env = iri("urn:test#env");
    g.add(env.clone(), iri(rdf::TYPE), cls);
    g.add(
        env.clone(),
        iri("http://grdf.org/temporal#hasTimePosition"),
        iri("urn:test#t0"),
    );
    Reasoner::default().materialize(&mut g);
    assert!(
        !check_consistency(&g).is_empty(),
        "one time position violates =2"
    );
    g.add(
        env,
        iri("http://grdf.org/temporal#hasTimePosition"),
        iri("urn:test#t1"),
    );
    assert!(check_consistency(&g).is_empty());
    let report = lint_graph(&g);
    assert!(report.is_clean(), "{}", report.render_text());
}

/// List 4 — the curve multipart family, and the paper's rule that "there is
/// no such thing called ComplexCurve".
#[test]
fn list4_curve_multiparts() {
    let xml = r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                          xmlns:owl="http://www.w3.org/2002/07/owl#">
      <owl:Class rdf:about="http://grdf.org/ontology#Curve"/>
      <owl:Class rdf:about="http://grdf.org/ontology#MultiCurve"/>
      <owl:Class rdf:about="http://grdf.org/ontology#CompositeCurve"/>
      <owl:ObjectProperty rdf:about="http://grdf.org/ontology#curveMember"/>
    </rdf:RDF>"#;
    let g = grdf::rdf::rdfxml::parse(xml).unwrap();
    assert_eq!(g.len(), 4);
    let report = lint_graph(&g);
    assert!(report.is_clean(), "{}", report.render_text());
    let onto = grdf::core::ontology::grdf_ontology();
    for c in ["Curve", "MultiCurve", "CompositeCurve"] {
        assert!(onto.has(
            &iri(&format!("http://grdf.org/ontology#{c}")),
            &iri(rdf::TYPE),
            &iri(owl::CLASS)
        ));
    }
    // No ComplexCurve anywhere in the built ontology.
    assert!(!onto
        .match_pattern(
            Some(&iri("http://grdf.org/ontology#ComplexCurve")),
            None,
            None
        )
        .iter()
        .any(|_| true));
}

/// List 5 — the Face topology class with its three cardinality facets.
#[test]
fn list5_face_restrictions() {
    // The listing nests three restrictions in one class definition (with
    // several unclosed tags in the original); here each restriction is its
    // own subClassOf, which is the well-formed equivalent.
    let ttl = r#"
      @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
      @prefix owl: <http://www.w3.org/2002/07/owl#> .
      @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
      @prefix grdf: <http://grdf.org/ontology#> .
      grdf:Face rdfs:subClassOf grdf:TopoPrimitive ;
        rdfs:subClassOf [ a owl:Restriction ; owl:onProperty grdf:hasTopoSolid ;
                          owl:maxCardinality "2"^^xsd:nonNegativeInteger ] ;
        rdfs:subClassOf [ a owl:Restriction ; owl:onProperty grdf:hasSurface ;
                          owl:maxCardinality "1"^^xsd:nonNegativeInteger ] ;
        rdfs:subClassOf [ a owl:Restriction ; owl:onProperty grdf:hasEdge ;
                          owl:minCardinality "1"^^xsd:nonNegativeInteger ] .
    "#;
    let mut g = grdf::rdf::turtle::parse(ttl).unwrap();
    let face = iri("urn:t#f1");
    g.add(
        face.clone(),
        iri(rdf::TYPE),
        iri("http://grdf.org/ontology#Face"),
    );
    g.add(
        face.clone(),
        iri("http://grdf.org/ontology#hasEdge"),
        iri("urn:t#e1"),
    );
    Reasoner::default().materialize(&mut g);
    assert!(check_consistency(&g).is_empty());
    let report = lint_graph(&g);
    assert!(report.is_clean(), "{}", report.render_text());
    // Violate each facet in turn.
    for s in ["urn:t#s1", "urn:t#s2"] {
        g.add(
            face.clone(),
            iri("http://grdf.org/ontology#hasSurface"),
            iri(s),
        );
    }
    assert_eq!(
        check_consistency(&g).len(),
        1,
        "maxCardinality 1 on hasSurface"
    );
    for s in ["urn:t#v1", "urn:t#v2", "urn:t#v3"] {
        g.add(
            face.clone(),
            iri("http://grdf.org/ontology#hasTopoSolid"),
            iri(s),
        );
    }
    assert_eq!(
        check_consistency(&g).len(),
        2,
        "plus maxCardinality 2 on hasTopoSolid"
    );
}

/// List 6 — the hydrology stream sample. (The paper's listing closes a
/// `grdf:coordinates` element with `</gml:coordinates>` — a typo fixed
/// here.)
#[test]
fn list6_hydrology_sample() {
    let xml = r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                          xmlns:app="http://grdf.org/app#"
                          xmlns:grdf="http://grdf.org/ontology#">
      <rdf:Description rdf:about="http://grdf.org/app#VECTOR.VECTOR.HYDRO_STREAMS_CENSUS_line">
        <app:hasObjectID>11070</app:hasObjectID>
        <grdf:hasGeometry>
          <grdf:LineString>
            <grdf:srsName>http://grdf.org/crs/TX83-NCF</grdf:srsName>
            <grdf:coordinates>2533822.17263276,7108248.82783879 2533900.5,7108300.25</grdf:coordinates>
          </grdf:LineString>
        </grdf:hasGeometry>
      </rdf:Description>
    </rdf:RDF>"#;
    let g = grdf::rdf::rdfxml::parse(xml).unwrap();
    let stream = iri("http://grdf.org/app#VECTOR.VECTOR.HYDRO_STREAMS_CENSUS_line");
    // Geometry node is a grdf:LineString with the TX83-NCF srsName.
    let gnode = g
        .object(&stream, &iri("http://grdf.org/ontology#hasGeometry"))
        .unwrap();
    assert!(g.has(
        &gnode,
        &iri(rdf::TYPE),
        &iri("http://grdf.org/ontology#LineString")
    ));
    // The spatial layer can evaluate its extent directly from the listing.
    let env = grdf::query::spatial::feature_envelope(&g, &stream).unwrap();
    assert!(env.min.x > 2_533_000.0 && env.max.y > 7_108_000.0);
}

/// List 7 — the chemical-site sample, including the linked ChemInfo record.
#[test]
fn list7_chemical_site_sample() {
    let xml = r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                          xmlns:app="http://grdf.org/app#"
                          xmlns:grdf="http://grdf.org/ontology#">
      <app:ChemSite rdf:about="http://grdf.org/app#NTEnergy">
        <app:hasSiteName>North Texas Energy</app:hasSiteName>
        <app:hasSiteId>004221</app:hasSiteId>
        <grdf:BoundedBy>
          <grdf:Envelope>
            <grdf:srsName>http://grdf.org/crs/TX83-NCF</grdf:srsName>
            <grdf:coordinates>2533000,7108000 2534000,7109000</grdf:coordinates>
          </grdf:Envelope>
        </grdf:BoundedBy>
        <app:hasChemicalInfo rdf:resource="http://grdf.org/app#NTChemInfo"/>
      </app:ChemSite>
      <app:ChemInfo rdf:about="http://grdf.org/app#NTChemInfo">
        <app:hasChemName>Sulfuric Acid</app:hasChemName>
        <app:hasChemCode>121NR</app:hasChemCode>
      </app:ChemInfo>
    </rdf:RDF>"#;
    let g = grdf::rdf::rdfxml::parse(xml).unwrap();
    let site = iri("http://grdf.org/app#NTEnergy");
    assert!(g.has(&site, &iri(rdf::TYPE), &iri("http://grdf.org/app#ChemSite")));
    let info = g
        .object(&site, &iri("http://grdf.org/app#hasChemicalInfo"))
        .unwrap();
    assert_eq!(
        g.object(&info, &iri("http://grdf.org/app#hasChemName"))
            .unwrap()
            .as_literal()
            .unwrap()
            .lexical(),
        "Sulfuric Acid"
    );
    // The site id keeps its zero padding (it is an identifier, not a number).
    assert_eq!(
        g.object(&site, &iri("http://grdf.org/app#hasSiteId"))
            .unwrap()
            .as_literal()
            .unwrap()
            .lexical(),
        "004221"
    );
}

/// List 8 — the 'main repair' policy, decoded into the policy engine and
/// enforced exactly as §7.1 describes.
#[test]
fn list8_main_repair_policy() {
    let xml = r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                          xmlns:SecOnto="http://grdf.org/security#">
      <SecOnto:Subject rdf:about="http://grdf.org/security#MainRep">
        <SecOnto:hasPolicy rdf:resource="http://grdf.org/security#MainRepPolicy1"/>
      </SecOnto:Subject>
      <SecOnto:Policy rdf:about="http://grdf.org/security#MainRepPolicy1">
        <SecOnto:hasAction rdf:resource="http://grdf.org/security#View"/>
        <SecOnto:hasCondition rdf:resource="http://grdf.org/security#CondSites"/>
        <SecOnto:hasPolicyDecision rdf:resource="http://grdf.org/security#Permit"/>
        <SecOnto:hasResource rdf:resource="http://grdf.org/app#ChemSite"/>
      </SecOnto:Policy>
      <SecOnto:ConditionValue rdf:about="http://grdf.org/security#CondSites">
        <SecOnto:condValDefinition>
          <rdf:Description rdf:about="http://grdf.org/security#CondSitesDef">
            <SecOnto:hasPropertyAccess rdf:resource="http://grdf.org/ontology#BoundedBy"/>
          </rdf:Description>
        </SecOnto:condValDefinition>
      </SecOnto:ConditionValue>
    </rdf:RDF>"#;
    // (The paper's listing grants `#BuildingResource`; the §7.1 narrative
    // applies the policy to the chemical sites, used here.)
    let g = grdf::rdf::rdfxml::parse(xml).unwrap();
    let policies = Policy::decode_all(&g);
    assert_eq!(policies.len(), 1);
    let p = policies[0].clone();
    assert_eq!(p.role, "http://grdf.org/security#MainRep");
    assert_eq!(p.resource, "http://grdf.org/app#ChemSite");
    assert_eq!(
        p.conditions,
        vec![Condition::PropertyAccess(vec![
            "http://grdf.org/ontology#BoundedBy".to_string()
        ])]
    );

    // Enforce it over List 7's data: extent viewable, chemistry not.
    let mut data = grdf::rdf::Graph::new();
    let site = iri("http://grdf.org/app#NTEnergy");
    data.add(
        site.clone(),
        iri(rdf::TYPE),
        iri("http://grdf.org/app#ChemSite"),
    );
    data.add(
        site.clone(),
        iri("http://grdf.org/ontology#BoundedBy"),
        Term::string("…"),
    );
    data.add(
        site.clone(),
        iri("http://grdf.org/app#hasChemicalInfo"),
        iri("urn:x"),
    );
    let ps = grdf::security::policy::PolicySet::new(policies);
    assert_eq!(
        ps.evaluate(
            &data,
            &p.role,
            &site,
            "http://grdf.org/ontology#BoundedBy",
            Action::View
        ),
        Access::Granted
    );
    assert_eq!(
        ps.evaluate(
            &data,
            &p.role,
            &site,
            "http://grdf.org/app#hasChemicalInfo",
            Action::View
        ),
        Access::Denied
    );
}

/// List 3's class, secured: a permit on the superclass must reach
/// `EnvelopeWithTimePeriod` instances through subclass inference, and the
/// decision trace must name both the permitting policy and the inference
/// step that connected them.
#[test]
fn list3_decision_trace_explains_subclass_permit() {
    use grdf::security::policy::PolicySet;
    use grdf::security::secure_view_explained;

    let xml = r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                          xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
                          xmlns:owl="http://www.w3.org/2002/07/owl#">
      <owl:Class rdf:about="http://grdf.org/ontology#EnvelopeWithTimePeriod">
        <rdfs:subClassOf>
          <owl:Class rdf:about="http://grdf.org/ontology#Envelope"/>
        </rdfs:subClassOf>
      </owl:Class>
    </rdf:RDF>"#;
    let mut g = grdf::rdf::rdfxml::parse(xml).unwrap();
    let env = iri("urn:test#env1");
    g.add(
        env.clone(),
        iri(rdf::TYPE),
        iri("http://grdf.org/ontology#EnvelopeWithTimePeriod"),
    );
    g.add(
        env,
        iri("http://grdf.org/temporal#hasTimePosition"),
        iri("urn:test#t0"),
    );
    let policies = PolicySet::new(vec![Policy::permit(
        "urn:test#EnvelopePolicy",
        "urn:test#Analyst",
        "http://grdf.org/ontology#Envelope",
    )]);
    let (view, stats, trace) = secure_view_explained(&g, &policies, "urn:test#Analyst");
    assert!(stats.granted > 0, "subclass instances must be visible");
    assert!(!view.is_empty());
    assert!(
        trace
            .permitting
            .contains(&"urn:test#EnvelopePolicy".to_string()),
        "trace must name the permitting policy, got {:?}",
        trace.permitting
    );
    assert!(
        trace.inference.iter().any(|step| step
            .contains("EnvelopeWithTimePeriod rdfs:subClassOf* http://grdf.org/ontology#Envelope")),
        "trace must record the subclass inference step, got {:?}",
        trace.inference
    );
    assert!(trace.denying.is_empty());
    assert!(!trace.degraded);
}

/// List 4's curve family, secured: a deny on `Curve` must reach
/// `CompositeCurve` instances through the same inference, deny-wins over
/// an instance-level permit, and the trace must name the denying policy.
#[test]
fn list4_decision_trace_explains_deny_wins() {
    use grdf::security::policy::PolicySet;
    use grdf::security::secure_view_explained;

    let xml = r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                          xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
                          xmlns:owl="http://www.w3.org/2002/07/owl#">
      <owl:Class rdf:about="http://grdf.org/ontology#Curve"/>
      <owl:Class rdf:about="http://grdf.org/ontology#CompositeCurve">
        <rdfs:subClassOf>
          <owl:Class rdf:about="http://grdf.org/ontology#Curve"/>
        </rdfs:subClassOf>
      </owl:Class>
    </rdf:RDF>"#;
    let mut g = grdf::rdf::rdfxml::parse(xml).unwrap();
    let c1 = iri("urn:test#c1");
    g.add(
        c1.clone(),
        iri(rdf::TYPE),
        iri("http://grdf.org/ontology#CompositeCurve"),
    );
    g.add(
        c1,
        iri("http://grdf.org/ontology#curveMember"),
        iri("urn:test#seg1"),
    );
    let policies = PolicySet::new(vec![
        Policy::permit(
            "urn:test#CompositePermit",
            "urn:test#Surveyor",
            "http://grdf.org/ontology#CompositeCurve",
        ),
        Policy::deny(
            "urn:test#CurveDeny",
            "urn:test#Surveyor",
            "http://grdf.org/ontology#Curve",
        ),
    ]);
    let (view, stats, trace) = secure_view_explained(&g, &policies, "urn:test#Surveyor");
    assert!(
        !view
            .match_pattern(Some(&iri("urn:test#c1")), None, None)
            .iter()
            .any(|_| true),
        "deny-wins: the composite curve must be suppressed"
    );
    assert!(stats.suppressed > 0);
    assert!(
        trace.denying.contains(&"urn:test#CurveDeny".to_string()),
        "trace must name the denying policy, got {:?}",
        trace.denying
    );
    assert!(
        trace
            .inference
            .iter()
            .any(|step| step
                .contains("CompositeCurve rdfs:subClassOf* http://grdf.org/ontology#Curve")),
        "the deny reached the instance via inference, got {:?}",
        trace.inference
    );
}
