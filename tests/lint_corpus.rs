//! Golden lint corpus: every `LintCode` has at least one fixture that
//! fires it (asserting the exact code *and* subject), `clean_*` fixtures
//! prove the absence of false positives, the JSON rendering is pinned
//! against a committed snapshot, and output is invariant under triple
//! reordering.
//!
//! Fixture grammar: Turtle files in `tests/lint_corpus/`. Leading
//! comment lines of the form `# expect: CODE <absolute-iri>` declare the
//! complete set of (code, subject) pairs the linter must report — no
//! more, no less. Files named `clean_*.ttl` carry no expectations and
//! must lint clean. A `<stem>.policies.ttl` sidecar supplies policies
//! that are deliberately *not* part of the data graph (S002 needs a
//! policy whose target the graph cannot vouch for).

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use grdf::lint::{lint_all, LintCode, LintReport};
use grdf::rdf::graph::Graph;
use grdf::rdf::turtle;
use grdf::security::{Policy, PolicySet};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_corpus")
}

/// Every fixture (excluding policy sidecars), sorted for stable runs.
fn fixtures() -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "ttl")
                && !p
                    .file_name()
                    .is_some_and(|n| n.to_string_lossy().ends_with(".policies.ttl"))
        })
        .collect();
    out.sort();
    assert!(!out.is_empty(), "corpus must not be empty");
    out
}

/// Parse the `# expect: CODE <iri>` header lines.
fn expectations(src: &str) -> BTreeSet<(String, String)> {
    src.lines()
        .filter_map(|l| l.strip_prefix("# expect: "))
        .map(|rest| {
            let (code, subject) = rest.split_once(' ').expect("expect line: `CODE IRI`");
            let code = LintCode::parse(code).expect("expect line names a known code");
            (code.code().to_string(), subject.trim().to_string())
        })
        .collect()
}

/// Policies for a fixture: decoded from the data graph itself plus the
/// optional `<stem>.policies.ttl` sidecar.
fn fixture_policies(path: &Path, graph: &Graph) -> Option<PolicySet> {
    let mut policies = Policy::decode_all(graph);
    let sidecar = path.with_extension("policies.ttl");
    if sidecar.exists() {
        let src = fs::read_to_string(&sidecar).expect("sidecar readable");
        let pg = turtle::parse(&src).unwrap_or_else(|e| panic!("{}: {e:?}", sidecar.display()));
        policies.extend(Policy::decode_all(&pg));
    }
    (!policies.is_empty()).then(|| PolicySet::new(policies))
}

fn lint_fixture(path: &Path) -> (BTreeSet<(String, String)>, LintReport) {
    let src = fs::read_to_string(path).expect("fixture readable");
    let graph = turtle::parse(&src).unwrap_or_else(|e| panic!("{}: {e:?}", path.display()));
    let set = fixture_policies(path, &graph);
    (expectations(&src), lint_all(&graph, set.as_ref()))
}

/// The (code, subject) pairs a report actually contains.
fn reported(report: &LintReport) -> BTreeSet<(String, String)> {
    report
        .diagnostics
        .iter()
        .map(|d| {
            (
                d.code.code().to_string(),
                d.subject.as_iri().unwrap_or("<non-iri>").to_string(),
            )
        })
        .collect()
}

#[test]
fn fixtures_report_exactly_what_they_declare() {
    for path in fixtures() {
        let (expected, report) = lint_fixture(&path);
        let actual = reported(&report);
        assert_eq!(
            actual,
            expected,
            "{}:\n{}",
            path.display(),
            report.render_text()
        );
    }
}

#[test]
fn clean_fixtures_are_clean() {
    let mut seen = 0;
    for path in fixtures() {
        if !path
            .file_name()
            .is_some_and(|n| n.to_string_lossy().starts_with("clean_"))
        {
            continue;
        }
        seen += 1;
        let (expected, report) = lint_fixture(&path);
        assert!(
            expected.is_empty(),
            "{}: clean fixtures declare nothing",
            path.display()
        );
        assert!(
            report.is_clean(),
            "{}:\n{}",
            path.display(),
            report.render_text()
        );
    }
    assert!(seen >= 3, "corpus keeps at least three clean fixtures");
}

#[test]
fn every_code_has_a_firing_fixture() {
    let mut covered = BTreeSet::new();
    for path in fixtures() {
        let src = fs::read_to_string(&path).expect("fixture readable");
        for (code, _) in expectations(&src) {
            covered.insert(code);
        }
    }
    let all: BTreeSet<String> = LintCode::ALL.iter().map(|c| c.code().to_string()).collect();
    assert_eq!(covered, all, "every LintCode needs a firing fixture");
}

#[test]
fn json_output_matches_committed_snapshot() {
    let path = corpus_dir().join("G006_measure_type.ttl");
    let (_, report) = lint_fixture(&path);
    let snapshot_path = corpus_dir().join("snapshots/G006_measure_type.json");
    let expected = fs::read_to_string(&snapshot_path)
        .unwrap_or_else(|e| panic!("{}: {e}", snapshot_path.display()));
    assert_eq!(
        report.to_json(),
        expected.trim_end(),
        "JSON rendering drifted from {} — the format is versioned; bump \
         \"version\" and regenerate the snapshot if the change is deliberate",
        snapshot_path.display()
    );
}

/// A tiny deterministic generator for the shuffle test; no clock, no OS
/// entropy, so the "property" runs identically everywhere.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn lint_output_is_deterministic_under_triple_reordering() {
    for path in fixtures() {
        let src = fs::read_to_string(&path).expect("fixture readable");
        let graph = turtle::parse(&src).unwrap_or_else(|e| panic!("{}: {e:?}", path.display()));
        let set = fixture_policies(&path, &graph);
        let baseline = lint_all(&graph, set.as_ref()).to_json();

        let triples: Vec<_> = graph.iter().collect();
        for seed in 1..=4u64 {
            let mut shuffled = triples.clone();
            let mut rng = Lcg(seed);
            for i in (1..shuffled.len()).rev() {
                let j = (rng.next() as usize) % (i + 1);
                shuffled.swap(i, j);
            }
            let mut g = Graph::new();
            for t in shuffled {
                g.add(t.subject, t.predicate, t.object);
            }
            let set = fixture_policies(&path, &g);
            assert_eq!(
                lint_all(&g, set.as_ref()).to_json(),
                baseline,
                "{} (seed {seed}): lint output depends on triple order",
                path.display()
            );
        }
    }
}
