//! Property-based tests: serialization round-trips across the stack.

use proptest::prelude::*;

use grdf::feature::{decode_feature, encode_feature, Feature, Value};
use grdf::geometry::coord::{format_coord_list, parse_coord_list};
use grdf::geometry::{Coord, Envelope, LineString, Point};
use grdf::rdf::isomorphism::isomorphic;
use grdf::rdf::term::{Literal, Term, Triple};
use grdf::rdf::{Graph, PrefixMap};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_iri() -> impl Strategy<Value = String> {
    // Simple, URL-safe IRIs.
    "[a-z]{1,8}".prop_map(|s| format!("http://example.org/{s}"))
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        // Avoid control characters that the writers escape asymmetrically
        // only in pathological cases; printable text is the domain here.
        "[ -~]{0,20}".prop_map(|s| Literal::string(&s)),
        any::<i64>().prop_map(Literal::integer),
        any::<bool>().prop_map(Literal::boolean),
        (-1.0e9f64..1.0e9).prop_map(Literal::double),
        ("[ -~]{0,10}", "[a-z]{2}").prop_map(|(s, l)| Literal::lang_string(&s, &l)),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_iri().prop_map(|i| Term::iri(&i)),
        "[a-z][a-z0-9]{0,6}".prop_map(|b| Term::blank(&b)),
        arb_literal().prop_map(Term::Literal),
    ]
}

fn arb_subject() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_iri().prop_map(|i| Term::iri(&i)),
        "[a-z][a-z0-9]{0,6}".prop_map(|b| Term::blank(&b)),
    ]
}

fn arb_graph(max: usize) -> impl Strategy<Value = Graph> {
    prop::collection::vec((arb_subject(), arb_iri(), arb_term()), 0..max).prop_map(|ts| {
        ts.into_iter()
            .map(|(s, p, o)| Triple::new(s, Term::iri(&p), o))
            .collect()
    })
}

fn arb_coord() -> impl Strategy<Value = Coord> {
    // Values without float formatting surprises.
    (-1_000_000i32..1_000_000, -1_000_000i32..1_000_000)
        .prop_map(|(x, y)| Coord::xy(f64::from(x) / 16.0, f64::from(y) / 16.0))
}

// ---------------------------------------------------------------------------
// RDF syntaxes
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ntriples_roundtrip(g in arb_graph(25)) {
        let text = grdf::rdf::ntriples::serialize(&g);
        let back = grdf::rdf::ntriples::parse(&text).unwrap();
        prop_assert_eq!(&g, &back);
    }

    #[test]
    fn turtle_roundtrip_is_isomorphic(g in arb_graph(25)) {
        let text = grdf::rdf::turtle::serialize(&g, &PrefixMap::common());
        let back = grdf::rdf::turtle::parse(&text).unwrap();
        prop_assert!(isomorphic(&g, &back), "turtle:\n{}", text);
    }

    #[test]
    fn rdfxml_roundtrip_is_isomorphic(g in arb_graph(15)) {
        let xml = grdf::rdf::rdfxml::serialize(&g, &PrefixMap::common()).unwrap();
        let back = grdf::rdf::rdfxml::parse(&xml).unwrap();
        prop_assert!(isomorphic(&g, &back), "rdfxml:\n{}", xml);
    }

    #[test]
    fn graph_insert_remove_is_identity(g in arb_graph(20), extra in (arb_subject(), arb_iri(), arb_term())) {
        let mut g2 = g.clone();
        let t = Triple::new(extra.0, Term::iri(&extra.1), extra.2);
        let was_present = g2.contains(&t);
        g2.insert(t.clone());
        prop_assert!(g2.contains(&t));
        if !was_present {
            g2.remove(&t);
            prop_assert_eq!(&g, &g2);
        }
    }

    #[test]
    fn pattern_match_agrees_with_filtering(g in arb_graph(20), probe in arb_subject()) {
        let via_index = g.match_pattern(Some(&probe), None, None);
        let via_scan: Vec<_> = g.iter().filter(|t| t.subject == probe).collect();
        prop_assert_eq!(via_index.len(), via_scan.len());
        for t in via_index {
            prop_assert!(via_scan.contains(&t));
        }
    }
}

// ---------------------------------------------------------------------------
// Geometry & coordinates
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn coord_list_roundtrip(coords in prop::collection::vec(arb_coord(), 1..30)) {
        let text = format_coord_list(&coords);
        let back = parse_coord_list(&text, 2).unwrap();
        prop_assert_eq!(coords, back);
    }

    #[test]
    fn envelope_contains_its_inputs(coords in prop::collection::vec(arb_coord(), 1..30)) {
        let env = Envelope::of_coords(&coords).unwrap();
        for c in &coords {
            prop_assert!(env.contains(c));
        }
        prop_assert!(env.area() >= 0.0);
    }

    #[test]
    fn envelope_union_is_commutative_and_covering(a in arb_coord(), b in arb_coord(), c in arb_coord(), d in arb_coord()) {
        let e1 = Envelope::new(a, b);
        let e2 = Envelope::new(c, d);
        prop_assert_eq!(e1.union(&e2), e2.union(&e1));
        let u = e1.union(&e2);
        prop_assert!(u.contains_envelope(&e1));
        prop_assert!(u.contains_envelope(&e2));
    }

    #[test]
    fn envelope_intersection_is_within_both(a in arb_coord(), b in arb_coord(), c in arb_coord(), d in arb_coord()) {
        let e1 = Envelope::new(a, b);
        let e2 = Envelope::new(c, d);
        if let Some(i) = e1.intersection(&e2) {
            prop_assert!(e1.contains_envelope(&i));
            prop_assert!(e2.contains_envelope(&i));
        } else {
            prop_assert!(!e1.intersects(&e2));
        }
    }

    #[test]
    fn linestring_length_is_translation_invariant(
        coords in prop::collection::vec(arb_coord(), 2..20),
        dx in -1000.0f64..1000.0,
        dy in -1000.0f64..1000.0,
    ) {
        let l1 = LineString::new(coords.clone()).unwrap();
        let moved: Vec<Coord> = coords.iter().map(|c| c.translate(dx, dy)).collect();
        let l2 = LineString::new(moved).unwrap();
        prop_assert!((l1.length() - l2.length()).abs() < 1e-6);
    }

    #[test]
    fn convex_hull_contains_all_points(coords in prop::collection::vec(arb_coord(), 3..40)) {
        let hull = grdf::geometry::algorithms::convex_hull(&coords);
        if hull.len() >= 3 {
            for c in &coords {
                prop_assert!(
                    grdf::geometry::algorithms::point_in_ring(c, &hull),
                    "point {:?} outside hull {:?}", c, hull
                );
            }
        }
    }

    #[test]
    fn simplification_never_grows(coords in prop::collection::vec(arb_coord(), 2..30), eps in 0.0f64..100.0) {
        let s = grdf::geometry::algorithms::simplify(&coords, eps);
        prop_assert!(s.len() <= coords.len());
        prop_assert_eq!(s.first(), coords.first());
        prop_assert_eq!(s.last(), coords.last());
    }

    #[test]
    fn wkt_roundtrip_linestring(coords in prop::collection::vec(arb_coord(), 2..15)) {
        let g = grdf::geometry::Geometry::LineString(LineString::new(coords).unwrap());
        let text = grdf::geometry::wkt::to_wkt(&g);
        let back = grdf::geometry::wkt::parse_wkt(&text).unwrap();
        prop_assert_eq!(g, back);
    }
}

// ---------------------------------------------------------------------------
// Feature codec
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[ -~]{0,16}".prop_map(Value::String),
        any::<i64>().prop_map(Value::Integer),
        any::<bool>().prop_map(Value::Boolean),
        (-1.0e6f64..1.0e6).prop_map(Value::Double),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn feature_codec_roundtrip(
        props in prop::collection::vec(("[a-z]{1,8}", arb_value()), 0..8),
        point in arb_coord(),
        with_geometry in any::<bool>(),
    ) {
        let mut f = Feature::new("http://example.org/f1", "Thing");
        for (name, v) in &props {
            f.set_property(name, v.clone());
        }
        if with_geometry {
            f.set_geometry(Point::at(point).into());
        }
        let mut g = Graph::new();
        let subject = encode_feature(&mut g, &f);
        let back = decode_feature(&g, &subject).unwrap();
        prop_assert_eq!(&back.iri, &f.iri);
        prop_assert_eq!(&back.feature_type, &f.feature_type);
        prop_assert_eq!(&back.geometry, &f.geometry);
        // Properties survive as a multiset (order is index order).
        prop_assert_eq!(back.properties.len(), f.properties.len());
        for (name, v) in &f.properties {
            prop_assert!(
                back.property_values(name).contains(&v),
                "lost {}={:?}", name, v
            );
        }
    }

    #[test]
    fn time_roundtrip(epoch in -2_000_000_000i64..4_000_000_000i64) {
        let t = grdf::feature::TimeInstant::from_epoch(epoch);
        let text = t.to_iso8601();
        let back = grdf::feature::TimeInstant::parse(&text).unwrap();
        prop_assert_eq!(t, back);
    }
}
