//! `grdf-lint` over everything the repo ships: the built ontologies, the
//! §7.1 incident workload (List 6/7 substitutes) with its List 8 policy
//! set, and the Fig. 2 topology encoding. These artifacts are the
//! reference inputs for examples, benchmarks, and the paper-listing
//! tests, so they must hold themselves to the standard the linter
//! enforces on user data: zero findings, not merely zero errors.
//!
//! History this pins down: the linter originally caught the workload's
//! `app:` vocabulary being used without declarations (fixed in
//! `alignment_axioms`) and envelopes carrying `grdf:coordinates` without
//! being `Geometry` (fixed with `Envelope ⊑ Geometry`). A regression
//! here means a shipped artifact drifted from the schema again.

use grdf::lint::{lint_all, lint_graph, LintReport};
use grdf::rdf::graph::Graph;
use grdf::topology::model::{DirectedEdge, TopologyModel};

fn assert_clean(name: &str, report: &LintReport) {
    assert!(
        report.is_clean(),
        "{name} should lint clean:\n{}",
        report.render_text()
    );
}

fn merged(a: &Graph, b: &Graph) -> Graph {
    let mut g = a.clone();
    for t in b.iter() {
        g.add(t.subject, t.predicate, t.object);
    }
    g
}

#[test]
fn grdf_ontology_lints_clean() {
    let onto = grdf::core::ontology::grdf_ontology();
    assert_clean("grdf_ontology", &lint_graph(&onto));
}

#[test]
fn security_ontology_lints_clean() {
    // The security ontology references GRDF classes, so it is linted in
    // the context it is always deployed in: merged with the core ontology.
    let g = merged(
        &grdf::core::ontology::grdf_ontology(),
        &grdf::security::ontology::security_ontology(),
    );
    assert_clean("security + grdf ontology", &lint_graph(&g));
}

#[test]
fn incident_workload_lints_clean() {
    // The raw generated graph (alignment axioms + features)...
    let g = grdf_bench::incident_graph(12, 12, 7);
    assert_clean("incident graph", &lint_graph(&g));
    // ...and as a GrdfStore serves it, merged with the ontology, with the
    // three-role §7.1 policy set in force.
    let store = grdf_bench::incident_store(12, 12, 7);
    let policies = grdf_bench::scenario_policies();
    assert_clean(
        "incident store + scenario policies",
        &lint_all(store.graph(), Some(&policies)),
    );
}

#[test]
fn topology_encoding_lints_clean() {
    let mut m = TopologyModel::new();
    let a = m.add_node();
    let b = m.add_node();
    let c = m.add_node();
    let e1 = m.add_edge(a, b).unwrap();
    let e2 = m.add_edge(b, c).unwrap();
    let e3 = m.add_edge(c, a).unwrap();
    m.add_face(vec![
        DirectedEdge::forward(e1),
        DirectedEdge::forward(e2),
        DirectedEdge::forward(e3),
    ])
    .unwrap();
    let mut g = Graph::new();
    grdf::topology::rdf_codec::encode_topology(&mut g, "urn:topo#", &m);
    assert_clean("topology encoding", &lint_graph(&g));
    // And in ontology context too: the codec's vocabulary must line up
    // with the declared one.
    let with_onto = merged(&grdf::core::ontology::grdf_ontology(), &g);
    assert_clean("topology encoding + ontology", &lint_graph(&with_onto));
}
