//! Deterministic-encoding round-trips for the checkpoint codec
//! (`grdf_rdf::codec`): the byte stream is a *canonical* function of the
//! graph, so encode→decode→encode must be byte-identical — that is what
//! lets checkpoint checksums, and any future replication diffing, compare
//! states by their bytes. Exercised over the E6 incident store and the
//! paper's Listing 1–4 graphs, plus the corruption side: truncated and
//! bit-flipped inputs must fail with typed errors, never panic, never
//! return a partial graph.

use grdf::rdf::codec::{decode_graph, encode_graph};
use grdf::rdf::graph::Graph;

/// The canonical-bytes property plus semantic fidelity for one graph.
fn assert_roundtrip(name: &str, g: &Graph) {
    let bytes = encode_graph(g);
    let decoded = decode_graph(&bytes).unwrap_or_else(|e| panic!("{name}: decode failed: {e}"));
    assert_eq!(
        decoded.len(),
        g.len(),
        "{name}: triple count changed in the round trip"
    );
    for t in g.iter() {
        assert!(
            decoded.has(&t.subject, &t.predicate, &t.object),
            "{name}: lost {t:?}"
        );
    }
    let re_encoded = encode_graph(&decoded);
    assert_eq!(
        bytes, re_encoded,
        "{name}: encode→decode→encode is not byte-identical"
    );
}

/// Every truncation of `bytes` must produce a typed error — the decoder
/// has length guards before every read, so no prefix can panic or slip
/// through as a shorter valid graph.
fn assert_rejects_truncations(name: &str, bytes: &[u8], step: usize) {
    for cut in (0..bytes.len()).step_by(step.max(1)) {
        assert!(
            decode_graph(&bytes[..cut]).is_err(),
            "{name}: truncation to {cut}/{} bytes decoded successfully",
            bytes.len()
        );
    }
}

/// Every single-bit flip must be caught (CRC32 detects all single-bit
/// errors), again with a typed error rather than a panic.
fn assert_rejects_bit_flips(name: &str, bytes: &[u8], step: usize) {
    for pos in (0..bytes.len()).step_by(step.max(1)) {
        let mut corrupt = bytes.to_vec();
        corrupt[pos] ^= 1 << (pos % 8);
        assert!(
            decode_graph(&corrupt).is_err(),
            "{name}: bit flip at byte {pos} decoded successfully"
        );
    }
}

fn list1_graph() -> Graph {
    let gml = r#"<app:Site xmlns:app="http://grdf.org/app#"
                  xmlns:gml="http://www.opengis.net/gml" gml:id="s1">
        <app:temperature uom="http://grdf.org/uom/farenheit">21.23</app:temperature>
    </app:Site>"#;
    let fc = grdf::gml::read::parse_gml(gml).unwrap();
    let mut g = Graph::new();
    grdf::feature::rdf_codec::encode_feature(&mut g, &fc.features[0]);
    g
}

fn list2_graph() -> Graph {
    grdf::rdf::rdfxml::parse(
        r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                          xmlns:owl="http://www.w3.org/2002/07/owl#">
      <owl:ObjectProperty rdf:about="http://grdf.org/ontology#hasCenterLineOf"/>
      <owl:ObjectProperty rdf:about="http://grdf.org/ontology#hasCenterOf"/>
      <owl:ObjectProperty rdf:about="http://grdf.org/ontology#hasEdgeOf"/>
      <owl:ObjectProperty rdf:about="http://grdf.org/ontology#hasEnvelope"/>
      <owl:ObjectProperty rdf:about="http://grdf.org/ontology#hasExtentOf"/>
    </rdf:RDF>"#,
    )
    .unwrap()
}

fn list3_graph() -> Graph {
    grdf::rdf::rdfxml::parse(
        r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                          xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
                          xmlns:owl="http://www.w3.org/2002/07/owl#">
      <owl:Class rdf:about="http://grdf.org/ontology#EnvelopeWithTimePeriod">
        <rdfs:subClassOf>
          <owl:Restriction>
            <owl:cardinality rdf:datatype="http://www.w3.org/2001/XMLSchema#nonNegativeInteger">2</owl:cardinality>
            <owl:onProperty>
              <owl:ObjectProperty rdf:about="http://grdf.org/temporal#hasTimePosition"/>
            </owl:onProperty>
          </owl:Restriction>
        </rdfs:subClassOf>
      </owl:Class>
    </rdf:RDF>"#,
    )
    .unwrap()
}

fn list4_graph() -> Graph {
    grdf::rdf::rdfxml::parse(
        r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                          xmlns:owl="http://www.w3.org/2002/07/owl#">
      <owl:Class rdf:about="http://grdf.org/ontology#Curve"/>
      <owl:Class rdf:about="http://grdf.org/ontology#MultiCurve"/>
      <owl:Class rdf:about="http://grdf.org/ontology#CompositeCurve"/>
      <owl:ObjectProperty rdf:about="http://grdf.org/ontology#curveMember"/>
    </rdf:RDF>"#,
    )
    .unwrap()
}

#[test]
fn paper_listings_round_trip_byte_identically() {
    for (name, g) in [
        ("list1", list1_graph()),
        ("list2", list2_graph()),
        ("list3", list3_graph()),
        ("list4", list4_graph()),
    ] {
        assert!(!g.is_empty(), "{name}: fixture is empty");
        assert_roundtrip(name, &g);
        let bytes = encode_graph(&g);
        // Small graphs: exhaustive truncation and bit-flip sweeps.
        assert_rejects_truncations(name, &bytes, 1);
        assert_rejects_bit_flips(name, &bytes, 1);
    }
}

#[test]
fn e6_incident_store_round_trips_byte_identically() {
    let store = grdf_bench::incident_store(25, 25, 7);
    assert_roundtrip("e6_incident_store", store.graph());
}

#[test]
fn e6_incident_store_rejects_corrupt_bytes() {
    let store = grdf_bench::incident_store(12, 12, 7);
    let bytes = encode_graph(store.graph());
    // Larger input: sampled sweeps (primes, so positions drift across
    // record boundaries instead of hitting the same field each time).
    assert_rejects_truncations("e6", &bytes, 131);
    assert_rejects_bit_flips("e6", &bytes, 127);
}

#[test]
fn encoding_is_insertion_order_independent() {
    let g = list2_graph();
    let mut reversed = Graph::new();
    let mut triples: Vec<_> = g.iter().collect();
    triples.reverse();
    for t in triples {
        reversed.insert(t);
    }
    assert_eq!(
        encode_graph(&g),
        encode_graph(&reversed),
        "canonical encoding must not depend on insertion order"
    );
}

#[test]
fn blank_nodes_and_typed_literals_round_trip() {
    use grdf::rdf::term::{Literal, Term};
    let mut g = Graph::new();
    let b = Term::blank("b0");
    g.add(b.clone(), Term::iri("urn:p"), Term::string("plain"));
    g.add(
        b.clone(),
        Term::iri("urn:p"),
        Term::Literal(Literal::lang_string("hello", "en")),
    );
    g.add(
        b,
        Term::iri("urn:q"),
        Term::typed("2.5", "http://www.w3.org/2001/XMLSchema#double"),
    );
    assert_roundtrip("blank_and_literals", &g);
}
