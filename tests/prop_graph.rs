//! Property-based equivalence tests for the columnar LSM graph core: the
//! run + novelty-delta + tombstone representation must be observationally
//! identical to a plain `BTreeSet<Triple>` reference model under any
//! interleaving of inserts, removes, and compactions — on every
//! lint-corpus graph and on seeded random workloads, including compaction
//! concurrent with iteration (copy-on-write snapshot isolation) and
//! `delta_ids_since` generation snapshots that span compactions.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;

use grdf::rdf::graph::{Graph, TermId};
use grdf::rdf::term::{Term, Triple};

// ---------------------------------------------------------------------------
// Reference model: the graph as a plain ordered set of triples.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Model {
    set: BTreeSet<Triple>,
    /// Successful inserts in order — mirrors the graph's generation log.
    log: Vec<Triple>,
}

impl Model {
    fn insert(&mut self, t: Triple) -> bool {
        let added = self.set.insert(t.clone());
        if added {
            self.log.push(t);
        }
        added
    }

    fn remove(&mut self, t: &Triple) -> bool {
        self.set.remove(t)
    }

    fn delta_since(&self, generation: usize) -> Vec<Triple> {
        self.log[generation.min(self.log.len())..]
            .iter()
            .filter(|t| self.set.contains(t))
            .cloned()
            .collect()
    }
}

/// Full observational equality: size, membership, iteration as a set,
/// pattern matches, and exact `estimate` counts for every (s, p, o)
/// wildcard combination over the model's term universe.
fn assert_equivalent(graph: &Graph, model: &Model, context: &str) {
    assert_eq!(graph.len(), model.set.len(), "{context}: len");
    let scanned: BTreeSet<Triple> = graph.iter().collect();
    assert_eq!(scanned, model.set, "{context}: iterated triple set");

    let mut subjects = BTreeSet::new();
    let mut predicates = BTreeSet::new();
    let mut objects = BTreeSet::new();
    for t in &model.set {
        subjects.insert(t.subject.clone());
        predicates.insert(t.predicate.clone());
        objects.insert(t.object.clone());
    }
    // Exercise every prefix shape, including misses.
    subjects.insert(Term::iri("urn:prop#never-a-subject"));
    for s in &subjects {
        let want = model.set.iter().filter(|t| t.subject == *s).count();
        assert_eq!(
            graph.estimate(Some(s), None, None),
            want,
            "{context}: estimate (s,?,?) for {s}"
        );
        for p in &predicates {
            let want = model
                .set
                .iter()
                .filter(|t| t.subject == *s && t.predicate == *p)
                .count();
            assert_eq!(
                graph.estimate(Some(s), Some(p), None),
                want,
                "{context}: estimate (s,p,?)"
            );
            let got: BTreeSet<Triple> = {
                let mut acc = BTreeSet::new();
                graph.for_each_match(Some(s), Some(p), None, |t| {
                    acc.insert(t);
                });
                acc
            };
            let want: BTreeSet<Triple> = model
                .set
                .iter()
                .filter(|t| t.subject == *s && t.predicate == *p)
                .cloned()
                .collect();
            assert_eq!(got, want, "{context}: match (s,p,?)");
        }
    }
    for p in &predicates {
        let want = model.set.iter().filter(|t| t.predicate == *p).count();
        assert_eq!(
            graph.estimate(None, Some(p), None),
            want,
            "{context}: estimate (?,p,?)"
        );
        for o in &objects {
            let want = model
                .set
                .iter()
                .filter(|t| t.predicate == *p && t.object == *o)
                .count();
            assert_eq!(
                graph.estimate(None, Some(p), Some(o)),
                want,
                "{context}: estimate (?,p,o)"
            );
        }
    }
    for o in &objects {
        let want = model.set.iter().filter(|t| t.object == *o).count();
        assert_eq!(
            graph.estimate(None, None, Some(o)),
            want,
            "{context}: estimate (?,?,o)"
        );
    }
    for t in model.set.iter().take(64) {
        assert!(graph.contains(t), "{context}: contains live triple");
    }
}

// ---------------------------------------------------------------------------
// Lint-corpus graphs: every fixture must round-trip the model exactly.
// ---------------------------------------------------------------------------

#[test]
fn corpus_graphs_match_reference_model() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_corpus");
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("corpus dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "ttl"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 8, "corpus should supply enough graphs");
    for path in paths {
        let src = fs::read_to_string(&path).expect("fixture readable");
        let parsed = grdf::rdf::turtle::parse(&src).expect("fixture parses");
        let mut graph = Graph::new();
        let mut model = Model::default();
        for t in parsed.iter() {
            assert_eq!(
                graph.insert(t.clone()),
                model.insert(t),
                "{}: insert agreement",
                path.display()
            );
        }
        // Force at least one compaction so both representations (pure run
        // and run+novelty) are exercised per fixture.
        assert_equivalent(&graph, &model, &format!("{} pre-compact", path.display()));
        graph.compact();
        assert_equivalent(&graph, &model, &format!("{} post-compact", path.display()));
    }
}

// ---------------------------------------------------------------------------
// Seeded random interleavings of insert / remove / compact.
// ---------------------------------------------------------------------------

/// One scripted operation over a small term universe (dense enough that
/// removes hit live triples and re-inserts resurrect tombstones).
#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u8, u8),
    /// Remove the i-th triple (mod current size) of the model set.
    RemoveNth(u16),
    Compact,
}

fn term(i: u8) -> Term {
    Term::iri(&format!("urn:prop#t{}", i % 12))
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(s, p, o)| Op::Insert(s, p, o)),
            (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(s, p, o)| Op::Insert(s, p, o)),
            (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(s, p, o)| Op::Insert(s, p, o)),
            any::<u16>().prop_map(Op::RemoveNth),
            Just(Op::Compact),
        ],
        1..120,
    )
}

fn apply(ops: &[Op]) -> (Graph, Model) {
    let mut graph = Graph::new();
    let mut model = Model::default();
    for op in ops {
        match op {
            Op::Insert(s, p, o) => {
                let t = Triple::new(term(*s), term(*p), term(*o));
                assert_eq!(graph.insert(t.clone()), model.insert(t), "insert agreement");
            }
            Op::RemoveNth(n) => {
                if model.set.is_empty() {
                    continue;
                }
                let t = model
                    .set
                    .iter()
                    .nth(*n as usize % model.set.len())
                    .cloned()
                    .expect("non-empty");
                assert!(model.remove(&t));
                assert!(graph.remove(&t), "columnar remove must hit live triple");
            }
            Op::Compact => graph.compact(),
        }
    }
    (graph, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_interleavings_match_reference(ops in arb_ops()) {
        let (graph, model) = apply(&ops);
        assert_equivalent(&graph, &model, "random interleaving");
    }

    /// `delta_ids_since` snapshots must survive compactions that happen
    /// after the generation marker was taken: the log is append-only and
    /// compaction must not renumber or drop it.
    #[test]
    fn delta_snapshots_span_compactions(
        before in arb_ops(),
        after in arb_ops(),
    ) {
        let (mut graph, mut model) = apply(&before);
        let marker = graph.generation();
        let model_marker = model.log.len();

        // Mutate past the marker, compacting along the way.
        graph.compact();
        for op in &after {
            match op {
                Op::Insert(s, p, o) => {
                    let t = Triple::new(term(*s), term(*p), term(*o));
                    prop_assert_eq!(graph.insert(t.clone()), model.insert(t));
                }
                Op::RemoveNth(n) => {
                    if model.set.is_empty() { continue; }
                    let t = model.set.iter().nth(*n as usize % model.set.len())
                        .cloned().expect("non-empty");
                    model.remove(&t);
                    graph.remove(&t);
                }
                Op::Compact => graph.compact(),
            }
        }
        graph.compact();

        let want = model.delta_since(model_marker);
        let got_terms = graph.delta_since(marker);
        prop_assert_eq!(&got_terms, &want, "delta_since across compactions");
        let got_ids: Vec<Triple> = graph
            .delta_ids_since(marker)
            .into_iter()
            .map(|(s, p, o): (TermId, TermId, TermId)| {
                Triple::new(
                    graph.term_of(s).clone(),
                    graph.term_of(p).clone(),
                    graph.term_of(o).clone(),
                )
            })
            .collect();
        prop_assert_eq!(&got_ids, &want, "delta_ids_since agrees with delta_since");
    }

    /// Copy-on-write isolation: an iterator over a clone must be
    /// unaffected by compacting (and further mutating) the original
    /// mid-iteration — the Arc-shared run is never modified in place.
    #[test]
    fn compaction_mid_iteration_is_isolated(ops in arb_ops()) {
        let (mut graph, model) = apply(&ops);
        let snapshot = graph.clone();
        let mut iter = snapshot.iter();

        // Drain half the iterator, then compact + mutate the original.
        let half: Vec<Triple> = iter.by_ref().take(model.set.len() / 2).collect();
        graph.compact();
        graph.insert(Triple::new(term(0), term(1), term(2)));
        for t in model.set.iter().take(3) {
            graph.remove(t);
        }
        graph.compact();

        // The snapshot's iteration still yields exactly the old set.
        let rest: Vec<Triple> = iter.collect();
        let seen: BTreeSet<Triple> = half.into_iter().chain(rest).collect();
        prop_assert_eq!(seen, model.set.clone(), "snapshot iteration isolated from compaction");
    }
}
