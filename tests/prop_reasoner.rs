//! Property-based tests on the reasoner's core invariants: idempotence,
//! monotonicity, subclass-closure soundness/completeness, and the
//! interaction between reasoning and consistency checking.

use proptest::prelude::*;
use std::collections::HashSet;

use grdf::owl::consistency::check_consistency;
use grdf::owl::hierarchy::Hierarchy;
use grdf::owl::reasoner::{Reasoner, Strategy as EvalStrategy};
use grdf::rdf::term::Term;
use grdf::rdf::vocab::{owl, rdf, rdfs};
use grdf::rdf::Graph;
use grdf::runtime::Deadline;

/// Random subclass forest over `n` classes: each class i > 0 gets at most
/// one parent among classes 0..i, plus random instance assignments.
#[derive(Debug, Clone)]
struct Taxonomy {
    /// parent[i] = Some(j) with j < i.
    parents: Vec<Option<usize>>,
    /// (instance, class) memberships.
    memberships: Vec<(usize, usize)>,
}

fn arb_taxonomy(max_classes: usize, max_instances: usize) -> impl Strategy<Value = Taxonomy> {
    (2..max_classes).prop_flat_map(move |n| {
        let parents = (1..n)
            .map(|i| proptest::option::of(0..i))
            .collect::<Vec<_>>();
        let memberships = prop::collection::vec((0..max_instances, 0..n), 0..max_instances * 2);
        (parents, memberships).prop_map(|(mut ps, memberships)| {
            ps.insert(0, None);
            Taxonomy {
                parents: ps,
                memberships,
            }
        })
    })
}

fn class(i: usize) -> Term {
    Term::iri(&format!("urn:tax#C{i}"))
}

fn instance(i: usize) -> Term {
    Term::iri(&format!("urn:tax#i{i}"))
}

fn to_graph(t: &Taxonomy) -> Graph {
    let mut g = Graph::new();
    for (i, parent) in t.parents.iter().enumerate() {
        if let Some(p) = parent {
            g.add(class(i), Term::iri(rdfs::SUB_CLASS_OF), class(*p));
        }
    }
    for (inst, cls) in &t.memberships {
        g.add(instance(*inst), Term::iri(rdf::TYPE), class(*cls));
    }
    g
}

fn property(i: usize) -> Term {
    Term::iri(&format!("urn:tax#p{i}"))
}

/// A richer random graph than [`Taxonomy`]: a subclass forest plus random
/// property axioms (sub-property chains, domain/range, characteristics,
/// inverses), property assertions, and an optional OWL restriction. This
/// exercises every rule family the engine implements, so the equivalence
/// properties below compare the naive, semi-naive, and parallel engines
/// over their full rule surface, not just subclass closure.
#[derive(Debug, Clone)]
struct RichGraph {
    taxonomy: Taxonomy,
    /// `sub_props[i] = Some(j)` with `j < i`.
    sub_props: Vec<Option<usize>>,
    /// `(property, class)` domain axioms.
    domains: Vec<(usize, usize)>,
    /// `(property, class)` range axioms.
    ranges: Vec<(usize, usize)>,
    /// Properties declared `owl:TransitiveProperty`.
    transitive: Vec<usize>,
    /// Properties declared `owl:SymmetricProperty`.
    symmetric: Vec<usize>,
    /// `(p, q)` pairs declared `owl:inverseOf`.
    inverses: Vec<(usize, usize)>,
    /// Property assertions `(subject instance, property, object instance)`.
    assertions: Vec<(usize, usize, usize)>,
    /// Optional restriction `(property, filler class, kind)`; kind selects
    /// someValuesFrom / allValuesFrom / hasValue.
    restriction: Option<(usize, usize, u8)>,
}

fn arb_rich_graph() -> impl Strategy<Value = RichGraph> {
    let props = 4usize;
    let classes = 8usize;
    let instances = 6usize;
    (
        (
            arb_taxonomy(classes, instances),
            (1..props)
                .map(|i| proptest::option::of(0..i))
                .collect::<Vec<_>>(),
            prop::collection::vec((0..props, 0..classes), 0..3),
            prop::collection::vec((0..props, 0..classes), 0..3),
        ),
        (
            prop::collection::vec(0..props, 0..2),
            prop::collection::vec(0..props, 0..2),
            prop::collection::vec((0..props, 0..props), 0..2),
            prop::collection::vec((0..instances, 0..props, 0..instances), 0..12),
            proptest::option::of((0..props, 0..classes, 0u8..3)),
        ),
    )
        .prop_map(
            |(
                (taxonomy, mut sub_props, domains, ranges),
                (transitive, symmetric, inverses, assertions, restriction),
            )| {
                sub_props.insert(0, None);
                RichGraph {
                    taxonomy,
                    sub_props,
                    domains,
                    ranges,
                    transitive,
                    symmetric,
                    inverses,
                    assertions,
                    restriction,
                }
            },
        )
}

fn rich_to_graph(r: &RichGraph) -> Graph {
    let mut g = to_graph(&r.taxonomy);
    let n_classes = r.taxonomy.parents.len();
    for (i, parent) in r.sub_props.iter().enumerate() {
        if let Some(p) = parent {
            g.add(property(i), Term::iri(rdfs::SUB_PROPERTY_OF), property(*p));
        }
    }
    for (p, c) in &r.domains {
        g.add(property(*p), Term::iri(rdfs::DOMAIN), class(c % n_classes));
    }
    for (p, c) in &r.ranges {
        g.add(property(*p), Term::iri(rdfs::RANGE), class(c % n_classes));
    }
    for p in &r.transitive {
        g.add(
            property(*p),
            Term::iri(rdf::TYPE),
            Term::iri(owl::TRANSITIVE_PROPERTY),
        );
    }
    for p in &r.symmetric {
        g.add(
            property(*p),
            Term::iri(rdf::TYPE),
            Term::iri(owl::SYMMETRIC_PROPERTY),
        );
    }
    for (p, q) in &r.inverses {
        g.add(property(*p), Term::iri(owl::INVERSE_OF), property(*q));
    }
    for (s, p, o) in &r.assertions {
        g.add(instance(*s), property(*p), instance(*o));
    }
    if let Some((p, c, kind)) = &r.restriction {
        let node = Term::blank("restr");
        g.add(
            node.clone(),
            Term::iri(rdf::TYPE),
            Term::iri(owl::RESTRICTION),
        );
        g.add(node.clone(), Term::iri(owl::ON_PROPERTY), property(*p));
        match kind {
            0 => g.add(
                node.clone(),
                Term::iri(owl::SOME_VALUES_FROM),
                class(c % n_classes),
            ),
            1 => g.add(
                node.clone(),
                Term::iri(owl::ALL_VALUES_FROM),
                class(c % n_classes),
            ),
            _ => g.add(node.clone(), Term::iri(owl::HAS_VALUE), instance(0)),
        };
        g.add(node, Term::iri(rdfs::SUB_CLASS_OF), class(0));
    }
    g
}

/// Materialize a copy of `g` under `reasoner` and return the fixpoint.
fn fixpoint(g: &Graph, reasoner: Reasoner) -> Graph {
    let mut out = g.clone();
    reasoner.materialize(&mut out);
    out
}

/// The three rule configurations the equivalence properties sweep.
fn rule_configs() -> [Reasoner; 3] {
    [
        Reasoner::rdfs_only(),
        Reasoner {
            restrictions: false,
            ..Reasoner::default()
        },
        Reasoner::default(),
    ]
}

/// Ground-truth ancestors of class `i` by following parent links.
fn ancestors(t: &Taxonomy, i: usize) -> HashSet<usize> {
    let mut out = HashSet::new();
    let mut cur = t.parents[i];
    while let Some(p) = cur {
        if !out.insert(p) {
            break;
        }
        cur = t.parents[p];
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn materialization_is_idempotent(t in arb_taxonomy(12, 8)) {
        let mut g = to_graph(&t);
        Reasoner::default().materialize(&mut g);
        let first = g.len();
        let stats = Reasoner::default().materialize(&mut g);
        prop_assert_eq!(stats.inferred, 0);
        prop_assert_eq!(g.len(), first);
    }

    #[test]
    fn type_closure_matches_ground_truth(t in arb_taxonomy(12, 8)) {
        let mut g = to_graph(&t);
        Reasoner::default().materialize(&mut g);
        for (inst, cls) in &t.memberships {
            // Soundness & completeness of inherited memberships.
            for anc in ancestors(&t, *cls) {
                prop_assert!(
                    g.has(&instance(*inst), &Term::iri(rdf::TYPE), &class(anc)),
                    "i{} should be a C{}", inst, anc
                );
            }
        }
        // Soundness: no membership in a non-ancestor class (unless asserted
        // via a different membership).
        for (inst, cls) in &t.memberships {
            let legal: HashSet<usize> = t
                .memberships
                .iter()
                .filter(|(i2, _)| i2 == inst)
                .flat_map(|(_, c2)| {
                    let mut s = ancestors(&t, *c2);
                    s.insert(*c2);
                    s
                })
                .collect();
            for c in 0..t.parents.len() {
                if !legal.contains(&c) {
                    prop_assert!(
                        !g.has(&instance(*inst), &Term::iri(rdf::TYPE), &class(c)),
                        "i{} must NOT be C{} (asserted C{})", inst, c, cls
                    );
                }
            }
        }
    }

    #[test]
    fn materialization_is_monotone(t in arb_taxonomy(10, 6), extra_cls in 0usize..6, extra_inst in 0usize..6) {
        // Entailments of G are preserved when G grows.
        let mut g1 = to_graph(&t);
        Reasoner::default().materialize(&mut g1);
        let before: Vec<_> = g1.iter().collect();

        let mut g2 = to_graph(&t);
        let n = t.parents.len();
        g2.add(instance(extra_inst + 100), Term::iri(rdf::TYPE), class(extra_cls % n));
        Reasoner::default().materialize(&mut g2);
        for triple in before {
            prop_assert!(g2.contains(&triple), "lost entailment {}", triple);
        }
    }

    #[test]
    fn hierarchy_queries_agree_with_reasoner(t in arb_taxonomy(10, 6)) {
        // Hierarchy::instances_transitive (no materialization) must equal
        // Hierarchy::instances (after materialization).
        let g_raw = to_graph(&t);
        let h_raw = Hierarchy::new(&g_raw);
        let mut g_mat = to_graph(&t);
        Reasoner::default().materialize(&mut g_mat);
        let h_mat = Hierarchy::new(&g_mat);
        for c in 0..t.parents.len() {
            let mut lazy = h_raw.instances_transitive(&class(c));
            let mut eager = h_mat.instances(&class(c));
            lazy.sort();
            eager.sort();
            eager.dedup();
            prop_assert_eq!(lazy, eager, "class C{}", c);
        }
    }

    #[test]
    fn consistent_taxonomies_stay_consistent(t in arb_taxonomy(10, 6)) {
        let mut g = to_graph(&t);
        Reasoner::default().materialize(&mut g);
        prop_assert!(check_consistency(&g).is_empty());
    }

    #[test]
    fn disjointness_violations_are_found_iff_shared_members(
        t in arb_taxonomy(8, 5),
        a in 0usize..8,
        b in 0usize..8,
    ) {
        let n = t.parents.len();
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let mut g = to_graph(&t);
        g.add(
            class(a),
            Term::iri(grdf::rdf::vocab::owl::DISJOINT_WITH),
            class(b),
        );
        Reasoner::default().materialize(&mut g);
        let h = Hierarchy::new(&g);
        let members_a: HashSet<Term> = h.instances(&class(a)).into_iter().collect();
        let members_b: HashSet<Term> = h.instances(&class(b)).into_iter().collect();
        let overlap = members_a.intersection(&members_b).count();
        let violations = check_consistency(&g)
            .into_iter()
            .filter(|v| matches!(v, grdf::owl::consistency::Violation::Disjoint { .. }))
            .count();
        prop_assert_eq!(overlap > 0, violations > 0,
            "overlap {} vs violations {}", overlap, violations);
    }

    /// The semi-naive engine computes the exact same fixpoint as the naive
    /// reference engine, across every rule configuration (rdfs-only, owl
    /// without restrictions, full), and never needs more passes.
    #[test]
    fn semi_naive_equals_naive_on_random_graphs(r in arb_rich_graph()) {
        let g = rich_to_graph(&r);
        for config in rule_configs() {
            let naive = Reasoner { strategy: EvalStrategy::Naive, ..config };
            let semi = Reasoner { strategy: EvalStrategy::SemiNaive, ..config };
            let mut g_naive = g.clone();
            let mut g_semi = g.clone();
            let stats_naive = naive.materialize(&mut g_naive);
            let stats_semi = semi.materialize(&mut g_semi);
            prop_assert_eq!(&g_naive, &g_semi,
                "fixpoints differ (rdfs={} owl={} restrictions={})",
                config.rdfs, config.owl, config.restrictions);
            prop_assert_eq!(stats_naive.inferred, stats_semi.inferred);
            prop_assert!(stats_semi.passes <= stats_naive.passes,
                "semi-naive took {} passes vs naive {}",
                stats_semi.passes, stats_naive.passes);
        }
    }

    /// The parallel engine (any worker count) computes the same fixpoint
    /// as the sequential semi-naive engine — the merge is deterministic.
    #[test]
    fn parallel_equals_sequential_on_random_graphs(r in arb_rich_graph(), shards in 2usize..6) {
        let g = rich_to_graph(&r);
        for config in rule_configs() {
            let sequential = fixpoint(&g, config);
            let parallel = fixpoint(&g, Reasoner { shards, ..config });
            prop_assert_eq!(&sequential, &parallel,
                "parallel({}) diverged (rdfs={} owl={} restrictions={})",
                shards, config.rdfs, config.owl, config.restrictions);
        }
    }

    /// Incrementally deriving the consequences of a batch of additions
    /// yields exactly the same graph as re-materializing from scratch.
    #[test]
    fn incremental_update_equals_full_rematerialization(
        r in arb_rich_graph(),
        extra in prop::collection::vec((0..8usize, 0..4usize, 0..8usize), 1..6),
    ) {
        let reasoner = Reasoner::default();
        let mut incremental = rich_to_graph(&r);
        reasoner.materialize(&mut incremental);
        let mark = incremental.generation();
        let mut scratch = incremental.clone();
        for (s, p, o) in &extra {
            incremental.add(instance(*s + 50), property(*p), instance(*o + 50));
            scratch.add(instance(*s + 50), property(*p), instance(*o + 50));
        }
        reasoner
            .materialize_delta(&mut incremental, mark, &Deadline::never())
            .expect("never-expiring deadline");
        reasoner.materialize(&mut scratch);
        prop_assert_eq!(&incremental, &scratch);
    }
}
