//! Property-based tests on the reasoner's core invariants: idempotence,
//! monotonicity, subclass-closure soundness/completeness, and the
//! interaction between reasoning and consistency checking.

use proptest::prelude::*;
use std::collections::HashSet;

use grdf::owl::consistency::check_consistency;
use grdf::owl::hierarchy::Hierarchy;
use grdf::owl::reasoner::Reasoner;
use grdf::rdf::term::Term;
use grdf::rdf::vocab::{rdf, rdfs};
use grdf::rdf::Graph;

/// Random subclass forest over `n` classes: each class i > 0 gets at most
/// one parent among classes 0..i, plus random instance assignments.
#[derive(Debug, Clone)]
struct Taxonomy {
    /// parent[i] = Some(j) with j < i.
    parents: Vec<Option<usize>>,
    /// (instance, class) memberships.
    memberships: Vec<(usize, usize)>,
}

fn arb_taxonomy(max_classes: usize, max_instances: usize) -> impl Strategy<Value = Taxonomy> {
    (2..max_classes).prop_flat_map(move |n| {
        let parents = (1..n)
            .map(|i| proptest::option::of(0..i))
            .collect::<Vec<_>>();
        let memberships = prop::collection::vec((0..max_instances, 0..n), 0..max_instances * 2);
        (parents, memberships).prop_map(|(mut ps, memberships)| {
            ps.insert(0, None);
            Taxonomy {
                parents: ps,
                memberships,
            }
        })
    })
}

fn class(i: usize) -> Term {
    Term::iri(&format!("urn:tax#C{i}"))
}

fn instance(i: usize) -> Term {
    Term::iri(&format!("urn:tax#i{i}"))
}

fn to_graph(t: &Taxonomy) -> Graph {
    let mut g = Graph::new();
    for (i, parent) in t.parents.iter().enumerate() {
        if let Some(p) = parent {
            g.add(class(i), Term::iri(rdfs::SUB_CLASS_OF), class(*p));
        }
    }
    for (inst, cls) in &t.memberships {
        g.add(instance(*inst), Term::iri(rdf::TYPE), class(*cls));
    }
    g
}

/// Ground-truth ancestors of class `i` by following parent links.
fn ancestors(t: &Taxonomy, i: usize) -> HashSet<usize> {
    let mut out = HashSet::new();
    let mut cur = t.parents[i];
    while let Some(p) = cur {
        if !out.insert(p) {
            break;
        }
        cur = t.parents[p];
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn materialization_is_idempotent(t in arb_taxonomy(12, 8)) {
        let mut g = to_graph(&t);
        Reasoner::default().materialize(&mut g);
        let first = g.len();
        let stats = Reasoner::default().materialize(&mut g);
        prop_assert_eq!(stats.inferred, 0);
        prop_assert_eq!(g.len(), first);
    }

    #[test]
    fn type_closure_matches_ground_truth(t in arb_taxonomy(12, 8)) {
        let mut g = to_graph(&t);
        Reasoner::default().materialize(&mut g);
        for (inst, cls) in &t.memberships {
            // Soundness & completeness of inherited memberships.
            for anc in ancestors(&t, *cls) {
                prop_assert!(
                    g.has(&instance(*inst), &Term::iri(rdf::TYPE), &class(anc)),
                    "i{} should be a C{}", inst, anc
                );
            }
        }
        // Soundness: no membership in a non-ancestor class (unless asserted
        // via a different membership).
        for (inst, cls) in &t.memberships {
            let legal: HashSet<usize> = t
                .memberships
                .iter()
                .filter(|(i2, _)| i2 == inst)
                .flat_map(|(_, c2)| {
                    let mut s = ancestors(&t, *c2);
                    s.insert(*c2);
                    s
                })
                .collect();
            for c in 0..t.parents.len() {
                if !legal.contains(&c) {
                    prop_assert!(
                        !g.has(&instance(*inst), &Term::iri(rdf::TYPE), &class(c)),
                        "i{} must NOT be C{} (asserted C{})", inst, c, cls
                    );
                }
            }
        }
    }

    #[test]
    fn materialization_is_monotone(t in arb_taxonomy(10, 6), extra_cls in 0usize..6, extra_inst in 0usize..6) {
        // Entailments of G are preserved when G grows.
        let mut g1 = to_graph(&t);
        Reasoner::default().materialize(&mut g1);
        let before: Vec<_> = g1.iter().collect();

        let mut g2 = to_graph(&t);
        let n = t.parents.len();
        g2.add(instance(extra_inst + 100), Term::iri(rdf::TYPE), class(extra_cls % n));
        Reasoner::default().materialize(&mut g2);
        for triple in before {
            prop_assert!(g2.contains(&triple), "lost entailment {}", triple);
        }
    }

    #[test]
    fn hierarchy_queries_agree_with_reasoner(t in arb_taxonomy(10, 6)) {
        // Hierarchy::instances_transitive (no materialization) must equal
        // Hierarchy::instances (after materialization).
        let g_raw = to_graph(&t);
        let h_raw = Hierarchy::new(&g_raw);
        let mut g_mat = to_graph(&t);
        Reasoner::default().materialize(&mut g_mat);
        let h_mat = Hierarchy::new(&g_mat);
        for c in 0..t.parents.len() {
            let mut lazy = h_raw.instances_transitive(&class(c));
            let mut eager = h_mat.instances(&class(c));
            lazy.sort();
            eager.sort();
            eager.dedup();
            prop_assert_eq!(lazy, eager, "class C{}", c);
        }
    }

    #[test]
    fn consistent_taxonomies_stay_consistent(t in arb_taxonomy(10, 6)) {
        let mut g = to_graph(&t);
        Reasoner::default().materialize(&mut g);
        prop_assert!(check_consistency(&g).is_empty());
    }

    #[test]
    fn disjointness_violations_are_found_iff_shared_members(
        t in arb_taxonomy(8, 5),
        a in 0usize..8,
        b in 0usize..8,
    ) {
        let n = t.parents.len();
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let mut g = to_graph(&t);
        g.add(
            class(a),
            Term::iri(grdf::rdf::vocab::owl::DISJOINT_WITH),
            class(b),
        );
        Reasoner::default().materialize(&mut g);
        let h = Hierarchy::new(&g);
        let members_a: HashSet<Term> = h.instances(&class(a)).into_iter().collect();
        let members_b: HashSet<Term> = h.instances(&class(b)).into_iter().collect();
        let overlap = members_a.intersection(&members_b).count();
        let violations = check_consistency(&g)
            .into_iter()
            .filter(|v| matches!(v, grdf::owl::consistency::Violation::Disjoint { .. }))
            .count();
        prop_assert_eq!(overlap > 0, violations > 0,
            "overlap {} vs violations {}", overlap, violations);
    }
}
