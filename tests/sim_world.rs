//! Whole-system simulation suite (DESIGN.md §16).
//!
//! Three properties of the `grdf-sim` harness itself:
//!
//! 1. **Oracles hold** — over a range of master seeds, the unmodified
//!    stack survives the full fault schedule with zero violations.
//! 2. **Replay is bit-identical** — the same `{master_seed, steps}`
//!    produces the same verdict, final graph hash, and audit-log length,
//!    run after run. This is the counterexample-replay contract behind
//!    `grdf-cli sim --seed`.
//! 3. **The harness catches planted bugs** — acknowledging an update
//!    without its WAL append (`Bug::AckWithoutWal`) is detected by the
//!    durability oracle and shrinks to a locally-minimal schedule.
//!
//! `GRDF_MASTER_SEED` overrides the base seed of the sweep (decimal or
//! `0x`-hex), so a failing CI seed replays locally verbatim:
//! `GRDF_MASTER_SEED=0xBAD5EED cargo test --test sim_world`.

use grdf::runtime::SeedTree;
use grdf::sim::{run, shrink_seed, Bug, SimConfig};

/// Seeds per sweep; `GRDF_SIM_QUICK=1` trims for CI smoke lanes.
fn sweep() -> (u64, usize) {
    let base = SeedTree::from_env("GRDF_MASTER_SEED", 0x51D_BA5E).master();
    let quick = std::env::var("GRDF_SIM_QUICK").is_ok_and(|v| v == "1");
    (base, if quick { 3 } else { 8 })
}

#[test]
fn oracles_hold_across_seed_sweep() {
    let (base, count) = sweep();
    for i in 0..count {
        let seed = base.wrapping_add(i as u64);
        let report = run(&SimConfig::new(seed, 80));
        assert!(
            report.passed(),
            "seed {seed:#x} violated oracles:\n{}",
            report
                .violations
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        // The schedule must actually exercise the stack, or a vacuous
        // pass would mean nothing.
        assert!(report.acked > 0, "seed {seed:#x}: no update ever acked");
        assert!(
            report.faults_enabled > 0,
            "seed {seed:#x}: no faults scheduled"
        );
    }
}

#[test]
fn replay_is_bit_identical() {
    let (base, _) = sweep();
    let config = SimConfig::new(base, 120);
    let first = run(&config);
    let second = run(&config);
    assert_eq!(
        first.fingerprint(),
        second.fingerprint(),
        "verdict/graph-hash/audit-length must replay exactly"
    );
    assert_eq!(first, second, "the full report must replay exactly");
    // And a different master seed must actually change the world.
    let other = run(&SimConfig::new(base.wrapping_add(1), 120));
    assert_ne!(
        (first.graph_hash, first.audit_total),
        (other.graph_hash, other.audit_total),
        "distinct seeds should diverge somewhere"
    );
}

#[test]
fn kill_recover_cycles_preserve_acknowledged_updates() {
    let (base, count) = sweep();
    let mut recoveries = 0;
    for i in 0..count {
        let seed = base.wrapping_add(0x1000 + i as u64);
        let report = run(&SimConfig::new(seed, 100));
        assert!(report.passed(), "seed {seed:#x}: {:?}", report.violations);
        recoveries += report.recoveries;
    }
    assert!(
        recoveries > 0,
        "sweep never scheduled a kill/recover — the durability oracle was vacuous"
    );
}

#[test]
fn planted_ack_without_wal_bug_is_caught_and_shrunk() {
    let (base, _) = sweep();
    // Scan a few seeds for a schedule that both acks an update and then
    // kills the node — the shape that exposes the planted bug.
    let mut caught = None;
    for i in 0..16u64 {
        let seed = base.wrapping_add(0x2000 + i);
        let mut config = SimConfig::new(seed, 80);
        config.bug = Some(Bug::AckWithoutWal);
        let report = run(&config);
        if report.recoveries > 0 && !report.passed() {
            assert!(
                report.violations.iter().any(|v| v.oracle == "durability"),
                "seed {seed:#x}: bug fired but not via the durability oracle: {:?}",
                report.violations
            );
            caught = Some(config);
            break;
        }
    }
    let config = caught.expect("no seed in the scan window exposed the planted bug");

    // The same seed without the bug must pass: the harness flags the
    // *implementation*, not the schedule.
    let clean = SimConfig::new(config.master_seed, config.steps);
    assert!(
        run(&clean).passed(),
        "schedule fails even without the planted bug"
    );

    // Greedy shrink: the surviving events must still fail, and must be
    // locally minimal (the shrinker only keeps what the failure needs —
    // at minimum the kill/recover that exposes the loss).
    let shrunk = shrink_seed(&config).expect("failing run must shrink");
    assert!(!shrunk.report.passed());
    assert!(
        shrunk
            .report
            .violations
            .iter()
            .any(|v| v.oracle == "durability"),
        "shrunk counterexample lost the durability violation"
    );
    assert!(
        shrunk.kept.iter().any(|k| k.contains("kill-recover")),
        "minimal counterexample must keep a kill-recover: {:?}",
        shrunk.kept
    );
}
