//! Concurrency stress for the G-SACS front-end: many threads, mixed roles
//! and queries, shared service. Asserts the service neither deadlocks nor
//! loses accounting:
//!
//! * every query-cache lookup is classified (hits + misses == lookups);
//! * each role's secure view is built exactly once despite concurrent
//!   first requests (the build happens under the view-cache lock);
//! * every request is audited exactly once;
//! * admission control, when enabled, sheds rather than queues without
//!   bound, and shed requests are audited denials.

use std::sync::Arc;

use grdf::feature::{encode_feature, Feature};
use grdf::rdf::term::{Term, Triple};
use grdf::rdf::vocab::grdf as ns;
use grdf::rdf::Graph;
use grdf::security::gsacs::{
    ClientRequest, GSacs, OntoRepository, OwlHorstEngine, UpdateOp, UpdateOutcome, UpdateRequest,
};
use grdf::security::policy::{Action, Policy, PolicySet};
use grdf::security::resilience::ResilienceConfig;

const THREADS: usize = 8;
const REQUESTS_PER_THREAD: usize = 50;

fn build_service(cache_capacity: usize, config: ResilienceConfig) -> GSacs {
    let mut data = Graph::new();
    for i in 0..20 {
        let mut site = Feature::new(&ns::app(&format!("site{i}")), "ChemSite");
        site.set_property("hasSiteName", format!("Site {i}").as_str());
        site.set_property("hasChemCode", format!("C{i}").as_str());
        encode_feature(&mut data, &site);
        let mut stream = Feature::new(&ns::app(&format!("stream{i}")), "Stream");
        stream.set_property("hasObjectID", i64::from(i));
        encode_feature(&mut data, &stream);
    }
    let policies = PolicySet::new(vec![
        Policy::permit_properties(
            &ns::sec("MainRepPolicy1"),
            &ns::sec("MainRep"),
            &ns::app("ChemSite"),
            &[&ns::iri("isBoundedBy")],
        ),
        Policy::permit(
            &ns::sec("MainRepPolicy2"),
            &ns::sec("MainRep"),
            &ns::app("Stream"),
        ),
        Policy::permit(&ns::sec("E1"), &ns::sec("Emergency"), &ns::app("ChemSite")),
        Policy::permit(&ns::sec("E2"), &ns::sec("Emergency"), &ns::app("Stream")),
        Policy::permit(&ns::sec("H1"), &ns::sec("Hazmat"), &ns::app("ChemSite")),
        Policy {
            action: Action::Edit,
            ..Policy::permit(&ns::sec("H2"), &ns::sec("Hazmat"), &ns::app("ChemSite"))
        },
    ]);
    GSacs::with_resilience(
        OntoRepository::new(),
        policies,
        Box::<OwlHorstEngine>::default(),
        data,
        cache_capacity,
        config,
    )
}

const ROLES: &[&str] = &["MainRep", "Emergency", "Hazmat", "Nobody"];

fn queries() -> Vec<String> {
    vec![
        format!(
            "PREFIX app: <{}>\nSELECT ?c WHERE {{ ?s app:hasChemCode ?c }}",
            ns::APP_NS
        ),
        format!(
            "PREFIX app: <{}>\nSELECT ?n WHERE {{ ?s app:hasSiteName ?n }}",
            ns::APP_NS
        ),
        format!(
            "PREFIX app: <{}>\nSELECT ?o WHERE {{ ?s app:hasObjectID ?o }}",
            ns::APP_NS
        ),
        format!(
            "PREFIX app: <{}>\nSELECT ?s WHERE {{ ?s a app:Stream }}",
            ns::APP_NS
        ),
        format!("PREFIX app: <{}>\nASK {{ ?s a app:ChemSite }}", ns::APP_NS),
        "DEFINITELY NOT SPARQL".to_string(),
    ]
}

#[test]
fn concurrent_mixed_workload_keeps_accounting_exact() {
    let svc = Arc::new(build_service(32, ResilienceConfig::default()));
    let qs = Arc::new(queries());

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let svc = Arc::clone(&svc);
            let qs = Arc::clone(&qs);
            scope.spawn(move || {
                for i in 0..REQUESTS_PER_THREAD {
                    // Deterministic per-thread mix of roles and queries.
                    let role = ROLES[(t + i) % ROLES.len()];
                    let query = qs[(t * 7 + i * 3) % qs.len()].clone();
                    let req = ClientRequest {
                        role: ns::sec(role),
                        query,
                    };
                    // Errors (parse failures, shed) are fine; panics and
                    // deadlocks are what this test exists to catch.
                    let _ = svc.handle(&req);
                }
            });
        }
    });

    let total = (THREADS * REQUESTS_PER_THREAD) as u64;
    let (hits, misses) = svc.cache_stats();
    assert_eq!(
        hits + misses,
        svc.cache_lookups(),
        "every lookup must be classified as hit or miss"
    );
    assert_eq!(svc.health().requests, total);

    // Each role's view was built exactly once; concurrent first requests
    // must not duplicate the (expensive) build.
    for role in ROLES {
        let builds = svc.view_builds_for(&ns::sec(role));
        assert!(
            builds <= 1,
            "role {role} view built {builds} times; the build must be single-flight"
        );
    }

    // Exactly one audit entry per request, nothing dropped at this volume.
    let audited = svc
        .audit_log()
        .iter()
        .filter(|e| e.action == "query")
        .count() as u64
        + svc.audit_dropped();
    assert_eq!(
        audited, total,
        "every decision must be audited exactly once"
    );
}

#[test]
fn admission_limit_sheds_under_concurrency_and_audits_sheds() {
    // A limit far below the thread count guarantees shedding pressure;
    // correctness here is accounting, not a specific shed count.
    let config = ResilienceConfig {
        max_in_flight: 2,
        ..ResilienceConfig::default()
    };
    let svc = Arc::new(build_service(16, config));
    let qs = Arc::new(queries());

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let svc = Arc::clone(&svc);
            let qs = Arc::clone(&qs);
            scope.spawn(move || {
                for i in 0..REQUESTS_PER_THREAD {
                    let role = ROLES[(t + i) % ROLES.len()];
                    let query = qs[i % (qs.len() - 1)].clone(); // valid queries only
                    let _ = svc.handle(&ClientRequest {
                        role: ns::sec(role),
                        query,
                    });
                }
            });
        }
    });

    let total = (THREADS * REQUESTS_PER_THREAD) as u64;
    let h = svc.health();
    assert_eq!(h.requests, total);
    assert_eq!(h.in_flight, 0, "all permits must be released");
    // Shed requests are audited denials; successful ones audited allows.
    let log = svc.audit_log();
    let denied = log
        .iter()
        .filter(|e| e.action == "query" && !e.allowed)
        .count() as u64;
    assert!(denied >= h.shed, "every shed request is an audited denial");
    assert_eq!(log.len() as u64 + svc.audit_dropped(), total);
}

/// Exact accounting for the lock-free metrics registry itself: 8 threads
/// hammer shared and per-thread handles; every recorded event must be
/// visible in the final snapshot — no lost updates, no double counts.
#[test]
fn metrics_registry_accounting_is_exact_under_concurrency() {
    let reg = Arc::new(grdf::obs::MetricsRegistry::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let reg = Arc::clone(&reg);
            scope.spawn(move || {
                // Mix pre-resolved handles (hot path) with by-name lookups
                // (cold path) so both registration races are exercised.
                let shared = reg.counter("stress.shared");
                let hist = reg.histogram("stress.latency");
                for i in 0..REQUESTS_PER_THREAD {
                    shared.add(1);
                    reg.counter(&format!("stress.thread.{t}")).add(1);
                    hist.record((i as u64 % 16) + 1);
                    reg.gauge("stress.last_thread").set(t as i64);
                }
            });
        }
    });
    let snap = reg.snapshot();
    let total = (THREADS * REQUESTS_PER_THREAD) as u64;
    assert_eq!(snap.counters["stress.shared"], total);
    for t in 0..THREADS {
        assert_eq!(
            snap.counters[&format!("stress.thread.{t}")],
            REQUESTS_PER_THREAD as u64,
            "per-thread counter must see exactly its thread's increments"
        );
    }
    let hist = &snap.histograms["stress.latency"];
    assert_eq!(hist.count, total);
    // Sum of (i % 16) + 1 over one thread's loop, times THREADS.
    let per_thread: u64 = (0..REQUESTS_PER_THREAD as u64).map(|i| (i % 16) + 1).sum();
    assert_eq!(hist.sum, per_thread * THREADS as u64);
    let last = snap.gauges["stress.last_thread"];
    assert!(
        (0..THREADS as i64).contains(&last),
        "gauge holds some thread's value"
    );
}

/// The service-level registry stays coherent with G-SACS's own books
/// under the concurrent mixed workload: request, error, and cache
/// counters all reconcile exactly.
#[test]
fn concurrent_workload_keeps_service_registry_coherent() {
    let obs = grdf::obs::Obs::new();
    let config = ResilienceConfig {
        obs: obs.clone(),
        ..ResilienceConfig::default()
    };
    let svc = Arc::new(build_service(32, config));
    let qs = Arc::new(queries());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let svc = Arc::clone(&svc);
            let qs = Arc::clone(&qs);
            scope.spawn(move || {
                for i in 0..REQUESTS_PER_THREAD {
                    let role = ROLES[(t + i) % ROLES.len()];
                    let query = qs[(t * 7 + i * 3) % qs.len()].clone();
                    let _ = svc.handle(&ClientRequest {
                        role: ns::sec(role),
                        query,
                    });
                }
            });
        }
    });
    let total = (THREADS * REQUESTS_PER_THREAD) as u64;
    let snap = obs.registry().snapshot();
    assert_eq!(snap.counters["gsacs.requests"], total);
    assert_eq!(
        snap.counters["gsacs.cache.hit"] + snap.counters["gsacs.cache.miss"],
        svc.cache_lookups(),
        "registry cache counters must reconcile with the cache's own books"
    );
    assert_eq!(snap.counters["gsacs.cache.hit"], svc.cache_stats().0);
    // Every error is both counted and audited as a denial.
    let denied = svc
        .audit_log()
        .iter()
        .filter(|e| e.action == "query" && !e.allowed)
        .count() as u64;
    assert_eq!(snap.counters["gsacs.errors"], denied);
    assert_eq!(snap.counters["view.builds"], ROLES.len() as u64);
}

/// Concurrent readers interleaved with sequential additive writes: every
/// additive update must take the incremental materialization path (counter
/// and span, never a full rebuild), and roles whose policies are untouched
/// by the delta keep their cached views across every round.
#[test]
fn additive_updates_under_read_pressure_stay_incremental() {
    const ROUNDS: usize = 5;
    let obs = grdf::obs::Obs::with_tracing(1024);
    let config = ResilienceConfig {
        obs: obs.clone(),
        ..ResilienceConfig::default()
    };
    let mut svc = build_service(32, config);
    let qs = queries();

    for round in 0..ROUNDS {
        // Phase A: concurrent readers warm every role's view and query
        // caches (valid queries only — errors aren't the subject here).
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let svc = &svc;
                let qs = &qs;
                scope.spawn(move || {
                    for i in 0..8 {
                        let role = ROLES[(t + i) % ROLES.len()];
                        let query = qs[(t + i) % (qs.len() - 1)].clone();
                        let _ = svc.handle(&ClientRequest {
                            role: ns::sec(role),
                            query,
                        });
                    }
                });
            }
        });
        // Phase B: one authorized additive write touching only a ChemSite
        // instance; the delta path must handle it without a rebuild.
        let out = svc.handle_update(&UpdateRequest {
            role: ns::sec("Hazmat"),
            ops: vec![UpdateOp::Insert(Triple::new(
                Term::iri(&ns::app(&format!("site{round}"))),
                Term::iri(&ns::app("hasInspectionNote")),
                Term::string(&format!("round {round}")),
            ))],
        });
        assert_eq!(out, UpdateOutcome::Applied(1));
    }

    // Every update took the incremental path; the full-rebuild path never
    // fired after construction.
    let registry = obs.registry();
    assert_eq!(
        registry.counter("gsacs.update.incremental").get(),
        ROUNDS as u64
    );
    assert_eq!(registry.counter("gsacs.update.full").get(), 0);

    // Span-level evidence: one successful incremental span per round, and
    // at most the single construction-time full materialization anywhere.
    let records = obs.sink().records();
    let spans: Vec<_> = records
        .iter()
        .flat_map(|r| r.spans_named("gsacs.update.incremental"))
        .collect();
    assert_eq!(spans.len(), ROUNDS, "one incremental span per update");
    for span in &spans {
        assert_eq!(span.tag("ok"), Some("true"));
    }
    let full_materializations: usize = records
        .iter()
        .map(|r| r.spans_named("reasoner.materialize").len())
        .sum();
    assert!(
        full_materializations <= 1,
        "updates must never trigger a full re-materialization \
         (saw {full_materializations} beyond construction)"
    );

    // Selective invalidation: a role with no policy over the updated
    // resources keeps its cached view through all five rounds.
    assert_eq!(
        svc.view_builds_for(&ns::sec("Nobody")),
        1,
        "unaffected role's view must survive every additive update"
    );
}
