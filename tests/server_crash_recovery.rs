//! Real-filesystem crash-during-serve integration test (DESIGN.md §16.6).
//!
//! The simulation suite (`tests/sim_world.rs`) proves the durability
//! oracle over in-memory backends and a virtual clock. This test closes
//! the remaining gap to production: a live `GrdfServer` with real worker
//! threads, real `TcpStream`s, and a real directory of files, whose
//! storage dies mid-serve via a byte-budgeted [`CrashBackend`] over
//! [`FsBackend`].
//!
//! Protocol:
//!
//! 1. Seed a durable G-SACS on a temp dir (clean `FsBackend`).
//! 2. "Restart" it through `CrashBackend<FsBackend>` — exactly the files
//!    a rebooted process would see — and serve it over TCP.
//! 3. Flood `/update` with unique inspection notes until the first
//!    non-200: the moment the crash fires inside a WAL append, audit
//!    append, or checkpoint rotation, the store poisons itself and the
//!    service fails closed.
//! 4. Recover from a *fresh* `FsBackend` over the same directory and
//!    assert the recovered base is exactly the seeded graph plus every
//!    2xx-acknowledged update — nothing acked lost, nothing unacked
//!    leaked.
//!
//! `GRDF_MASTER_SEED` (decimal or `0x`-hex) reseeds the crash budget so
//! CI failures replay locally verbatim.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use grdf::feature::{encode_feature, Feature};
use grdf::rdf::term::{Term, Triple};
use grdf::rdf::vocab::grdf as ns;
use grdf::rdf::Graph;
use grdf::runtime::SeedTree;
use grdf::security::gsacs::{GSacs, OntoRepository, OwlHorstEngine};
use grdf::security::policy::{Action, Policy, PolicySet};
use grdf::security::resilience::ResilienceConfig;
use grdf::server::{GrdfServer, QuotaConfig, ServerConfig};
use grdf::store::{recover, CrashBackend, FsBackend, FsyncPolicy, StorageBackend, StoreConfig};

fn site_data() -> Graph {
    let mut data = Graph::new();
    for i in 0..8 {
        let mut site = Feature::new(&ns::app(&format!("site{i}")), "ChemSite");
        site.set_property("hasSiteName", format!("Site {i}").as_str());
        encode_feature(&mut data, &site);
    }
    data
}

fn policies() -> PolicySet {
    PolicySet::new(vec![
        Policy::permit(&ns::sec("E1"), &ns::sec("Emergency"), &ns::app("ChemSite")),
        Policy {
            action: Action::Edit,
            ..Policy::permit(&ns::sec("E2"), &ns::sec("Emergency"), &ns::app("ChemSite"))
        },
    ])
}

fn store_config() -> StoreConfig {
    StoreConfig {
        fsync: FsyncPolicy::Always,
        // Small enough that the flood crosses several checkpoint
        // rotations before the byte budget runs out, so the crash can
        // land inside the rotation protocol, not just WAL appends.
        checkpoint_threshold: 4096,
    }
}

fn server_config() -> ServerConfig {
    ServerConfig {
        // One worker keeps request handling serial, so "the acked
        // prefix" is well defined without cross-request interleaving.
        workers: 1,
        // The flood is as fast as loopback allows; admission quotas
        // would shed it with 429s long before the crash fires.
        quota: QuotaConfig {
            rate_per_sec: 0.0,
            burst: 0.0,
        },
        ..ServerConfig::default()
    }
}

/// One request on a fresh connection (`connection: close`); `None` when
/// the transport itself failed — treated as unacknowledged.
fn roundtrip(addr: std::net::SocketAddr, request: &[u8]) -> Option<Vec<u8>> {
    let mut conn = TcpStream::connect(addr).ok()?;
    conn.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    conn.write_all(request).ok()?;
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).ok()?;
    Some(raw)
}

fn http_status(raw: &[u8]) -> Option<u16> {
    let head = raw.split(|&b| b == b'\r').next()?;
    let text = std::str::from_utf8(head).ok()?;
    text.split(' ').nth(1)?.parse().ok()
}

fn note_triple(i: usize) -> Triple {
    Triple::new(
        Term::iri(&ns::app(&format!("site{}", i % 8))),
        Term::iri(&ns::app("hasInspectionNote")),
        Term::string(&format!("flood-{i}")),
    )
}

#[test]
fn crash_during_serve_recovers_exactly_the_acked_prefix() {
    let seeds = SeedTree::from_env("GRDF_MASTER_SEED", 0xC4A54F5);
    // 12k–28k bytes: enough for the boot bump plus a handful of acked
    // updates and at least one checkpoint rotation, never enough for the
    // whole 400-request flood.
    let budget = 12_000 + seeds.decider().draw("crash.budget", 0) % 16_000;

    let dir = std::env::temp_dir().join(format!("grdf-crash-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");

    // 1. Seed the durable service on a clean real filesystem.
    let svc = GSacs::create_durable(
        Arc::new(FsBackend::open(&dir).expect("open fs backend")) as Arc<dyn StorageBackend>,
        store_config(),
        OntoRepository::new(),
        policies(),
        Box::<OwlHorstEngine>::default(),
        site_data(),
        16,
        ResilienceConfig::default(),
    )
    .expect("seed durable service");
    let mut model = svc.base_graph().clone();
    drop(svc);

    // 2. Restart through the byte-budgeted crash backend and serve it.
    let crashy = Arc::new(CrashBackend::new(
        FsBackend::open(&dir).expect("reopen fs backend"),
        budget,
    ));
    let (svc, recovered) = GSacs::recover_with_resilience(
        Arc::clone(&crashy) as Arc<dyn StorageBackend>,
        store_config(),
        Box::<OwlHorstEngine>::default(),
        16,
        ResilienceConfig::default(),
    )
    .expect("recover under budget");
    assert_eq!(recovered.base, model, "clean restart must be lossless");
    let server = GrdfServer::bind("127.0.0.1:0", svc, server_config()).expect("bind");
    let addr = server.local_addr();

    // 3. Flood with unique updates until the store dies under us.
    let mut acked = 0usize;
    let mut stopped_by_error = false;
    for i in 0..400 {
        let t = note_triple(i);
        let body = format!("+ {t}\n");
        let request = format!(
            "POST /update HTTP/1.1\r\nx-role: {}\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            ns::sec("Emergency"),
            body.len()
        );
        let status = roundtrip(addr, request.as_bytes())
            .as_deref()
            .and_then(http_status);
        if status == Some(200) {
            model.insert(t);
            acked += 1;
        } else {
            // Fail-closed refusal (403/503) or a dead transport; either
            // way nothing past this point is acknowledged.
            stopped_by_error = true;
            break;
        }
    }
    server.shutdown();

    assert!(
        crashy.crashed(),
        "budget {budget} never fired the crash — the flood was too small to test anything"
    );
    assert!(
        stopped_by_error,
        "service kept acking after its storage died"
    );
    assert!(acked > 0, "budget {budget} crashed before a single ack");

    // 4. A fresh process over the same directory: recovery must yield
    //    the seeded base plus exactly the acked updates.
    let fresh = FsBackend::open(&dir).expect("fresh fs backend");
    let after = recover(&fresh).expect("crash tears only the tail; recovery must succeed");
    assert_eq!(
        after.base, model,
        "recovered base != seeded graph + {acked} acked update(s) (budget {budget})"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
