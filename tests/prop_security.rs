//! Property-based security invariants: the secure view must be *sound*
//! (never expose what the evaluator denies), monotone in privileges, and
//! the fine-grained view must never exceed the object-level view built
//! from the corresponding unconditional grants.

use proptest::prelude::*;

use grdf::feature::{encode_feature, Feature};
use grdf::rdf::term::Term;
use grdf::rdf::vocab::{grdf as ns, rdf};
use grdf::rdf::Graph;
use grdf::security::geoxacml::{XacmlPolicySet, XacmlRule};
use grdf::security::policy::{Access, Action, Policy, PolicySet};
use grdf::security::views::secure_view;

const TYPES: &[&str] = &["ChemSite", "Stream", "ChemInfo", "Depot"];
const PROPS: &[&str] = &[
    "hasSiteName",
    "hasChemCode",
    "hasContactPhone",
    "hasObjectID",
];

/// A random instance dataset: features over a small type/property universe.
fn arb_dataset() -> impl Strategy<Value = Graph> {
    prop::collection::vec(
        (
            0..TYPES.len(),
            prop::collection::vec((0..PROPS.len(), "[a-z]{1,6}"), 0..4),
        ),
        1..12,
    )
    .prop_map(|features| {
        let mut g = Graph::new();
        for (i, (ty, props)) in features.into_iter().enumerate() {
            let mut f = Feature::new(&ns::app(&format!("x{i}")), TYPES[ty]);
            for (p, v) in props {
                f.set_property(PROPS[p], v.as_str());
            }
            encode_feature(&mut g, &f);
        }
        g
    })
}

/// A random fine-grained policy set for one role.
fn arb_policies(role: String) -> impl Strategy<Value = PolicySet> {
    prop::collection::vec(
        (
            0..TYPES.len(),
            prop::option::of(prop::collection::vec(0..PROPS.len(), 1..3)),
            prop::bool::ANY,
        ),
        0..5,
    )
    .prop_map(move |rules| {
        let policies = rules
            .into_iter()
            .enumerate()
            .map(|(i, (ty, props, deny))| {
                let id = format!("urn:policy#{i}");
                if deny {
                    Policy::deny(&id, &role, &ns::app(TYPES[ty]))
                } else {
                    match props {
                        None => Policy::permit(&id, &role, &ns::app(TYPES[ty])),
                        Some(ps) => {
                            let names: Vec<String> =
                                ps.into_iter().map(|p| ns::app(PROPS[p])).collect();
                            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                            Policy::permit_properties(&id, &role, &ns::app(TYPES[ty]), &refs)
                        }
                    }
                }
            })
            .collect();
        PolicySet::new(policies)
    })
}

const ROLE: &str = "urn:role#tester";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: every triple in the view would be Granted by the
    /// evaluator (checked for IRI subjects; blank subtree nodes are pulled
    /// in by their granted parent property).
    #[test]
    fn view_is_sound(data in arb_dataset(), ps in arb_policies(ROLE.to_string())) {
        let (view, _) = secure_view(&data, &ps, ROLE);
        for t in view.iter() {
            if t.subject.is_blank() {
                continue;
            }
            let pred = t.predicate.as_iri().unwrap();
            let access = ps.evaluate(&data, ROLE, &t.subject, pred, Action::View);
            prop_assert_eq!(
                access,
                Access::Granted,
                "view exposed {} though evaluator says {:?}", t, access
            );
        }
    }

    /// The view never invents triples: it is a subgraph of the data.
    #[test]
    fn view_is_a_subgraph(data in arb_dataset(), ps in arb_policies(ROLE.to_string())) {
        let (view, _) = secure_view(&data, &ps, ROLE);
        for t in view.iter() {
            prop_assert!(data.contains(&t), "view invented {}", t);
        }
    }

    /// Adding a Permit policy never shrinks the view (privilege
    /// monotonicity) — provided no Deny is present, since Deny overrides.
    #[test]
    fn permits_are_monotone(data in arb_dataset(), ty in 0..TYPES.len()) {
        let base = PolicySet::new(vec![Policy::permit_properties(
            "urn:p#base",
            ROLE,
            &ns::app(TYPES[0]),
            &[&ns::app(PROPS[0])],
        )]);
        let mut extended = base.clone();
        extended.push(Policy::permit("urn:p#more", ROLE, &ns::app(TYPES[ty])));
        let (v1, _) = secure_view(&data, &base, ROLE);
        let (v2, _) = secure_view(&data, &extended, ROLE);
        for t in v1.iter() {
            prop_assert!(v2.contains(&t), "extended view lost {}", t);
        }
        prop_assert!(v2.len() >= v1.len());
    }

    /// The fine-grained view is contained in the object-level view built
    /// from unconditional grants over the same resources (property
    /// conditions can only remove, never add).
    #[test]
    fn fine_grained_is_within_object_level(data in arb_dataset()) {
        let grdf_ps = PolicySet::new(vec![
            Policy::permit_properties(
                "urn:p#1",
                ROLE,
                &ns::app("ChemSite"),
                &[&ns::app("hasSiteName")],
            ),
            Policy::permit("urn:p#2", ROLE, &ns::app("Stream")),
        ]);
        let xacml_ps = XacmlPolicySet::new(vec![
            XacmlRule::permit(ROLE, &ns::app("ChemSite")),
            XacmlRule::permit(ROLE, &ns::app("Stream")),
        ]);
        let (fine, _) = secure_view(&data, &grdf_ps, ROLE);
        let (coarse, _) = xacml_ps.view(&data, ROLE);
        for t in fine.iter() {
            prop_assert!(coarse.contains(&t), "fine-grained exposed {} beyond object level", t);
        }
    }

    /// Deny-by-default: with no policies the view is empty.
    #[test]
    fn empty_policy_empty_view(data in arb_dataset()) {
        let (view, stats) = secure_view(&data, &PolicySet::default(), ROLE);
        prop_assert!(view.is_empty());
        prop_assert_eq!(stats.granted, 0);
    }

    /// An explicit Deny on a type removes every one of its property
    /// triples from the view, regardless of other permits.
    #[test]
    fn deny_overrides_any_permit(data in arb_dataset()) {
        let ps = PolicySet::new(vec![
            Policy::permit("urn:p#all", ROLE, &ns::app("ChemSite")),
            Policy::deny("urn:p#no", ROLE, &ns::app("ChemSite")),
        ]);
        let (view, _) = secure_view(&data, &ps, ROLE);
        let sites = data.subjects(&Term::iri(rdf::TYPE), &Term::iri(&ns::app("ChemSite")));
        for s in sites {
            prop_assert!(
                view.match_pattern(Some(&s), None, None).is_empty(),
                "denied subject {} leaked", s
            );
        }
    }
}
