//! End-to-end observability suite for the tenant-attributed SLO engine:
//!
//! 1. **Acceptance (ManualClock)** — multi-tenant load driven through the
//!    windowed store via the production scope/tee path, asserting exact
//!    per-tenant rates and windowed latency summaries; the burn-rate
//!    alert fires on the fast window and clears after recovery; tenant
//!    cardinality stays capped.
//! 2. **Exposition conformance** — a live server's `/metrics` parses
//!    under the Prometheus conformance parser, carries per-tenant
//!    windowed gauges, and its exemplar trace ids resolve to spans in
//!    the trace sink.
//! 3. **Degraded admission** — a burning objective sheds a fixed
//!    fraction of mutating traffic with `503` while probes stay exempt.
//! 4. **Trace propagation across durability** — `/update`'s `X-Trace-Id`
//!    appears on the WAL-append and checkpoint-rotation spans and in the
//!    durable audit JSONL.
//! 5. **Cardinality regression** — 10k distinct tenant ids over one
//!    keep-alive connection cannot grow the registry or the windowed
//!    store past the configured cap.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use grdf::feature::{encode_feature, Feature};
use grdf::obs::{Objective, Obs, SloEngine, SloState, TenantDim, WindowConfig};
use grdf::rdf::vocab::grdf as ns;
use grdf::rdf::Graph;
use grdf::runtime::{system_clock, Clock, ManualClock};
use grdf::security::gsacs::{GSacs, OntoRepository, OwlHorstEngine};
use grdf::security::policy::{Action, Policy, PolicySet};
use grdf::security::resilience::ResilienceConfig;
use grdf::server::{GrdfServer, ServerConfig};
use grdf::store::{MemBackend, StorageBackend, StoreConfig};

fn site_data(n: usize) -> Graph {
    let mut data = Graph::new();
    for i in 0..n {
        let mut site = Feature::new(&ns::app(&format!("site{i}")), "ChemSite");
        site.set_property("hasSiteName", format!("Site {i}").as_str());
        encode_feature(&mut data, &site);
    }
    data
}

fn policies() -> PolicySet {
    PolicySet::new(vec![
        Policy::permit(&ns::sec("E1"), &ns::sec("Emergency"), &ns::app("ChemSite")),
        Policy {
            action: Action::Edit,
            ..Policy::permit(&ns::sec("E2"), &ns::sec("Emergency"), &ns::app("ChemSite"))
        },
    ])
}

fn service(config: ResilienceConfig) -> GSacs {
    GSacs::with_resilience(
        OntoRepository::new(),
        policies(),
        Box::<OwlHorstEngine>::default(),
        site_data(8),
        16,
        config,
    )
}

fn select_query() -> String {
    format!(
        "PREFIX app: <{}>\nSELECT ?n WHERE {{ ?s app:hasSiteName ?n }}",
        ns::APP_NS
    )
}

/// One lockstep request/response exchange on an open keep-alive
/// connection: write the request, then read exactly one response
/// (headers + `content-length` body). Returns the raw response.
fn exchange(stream: &mut TcpStream, request: &[u8]) -> Vec<u8> {
    stream.write_all(request).expect("write request");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break p;
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "peer closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(|v| v.trim().to_string())
        })
        .and_then(|v| v.parse().ok())
        .expect("content-length header");
    let total = head_end + 4 + content_length;
    while buf.len() < total {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "peer closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    buf.truncate(total);
    buf
}

/// A keep-alive request (unlike the chaos harness's `build_request`,
/// no `connection: close`).
fn keepalive_request(method: &str, path: &str, headers: &[(&str, &str)], body: &[u8]) -> Vec<u8> {
    let mut out = format!("{method} {path} HTTP/1.1\r\n").into_bytes();
    for (name, value) in headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(format!("content-length: {}\r\n\r\n", body.len()).as_bytes());
    out.extend_from_slice(body);
    out
}

fn status_of(raw: &[u8]) -> u16 {
    String::from_utf8_lossy(raw)
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0)
}

fn body_of(raw: &[u8]) -> String {
    let text = String::from_utf8_lossy(raw);
    text.split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default()
}

// ---------------------------------------------------------------------------
// 1. ManualClock acceptance
// ---------------------------------------------------------------------------

#[test]
fn windowed_store_attributes_tenants_exactly_and_burn_alert_fires_and_clears() {
    let clock = Arc::new(ManualClock::new());
    let obs = Obs::new().with_windows(
        WindowConfig::default(),
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    let ws = Arc::clone(obs.windows().expect("windows attached"));
    let dim = TenantDim::new(4, Duration::from_hours(1));
    let now = || clock.now();

    // Ten 10-second slots of steady two-tenant traffic through the
    // production path: scope → set_tenant → free-function tees.
    // Per slot: acme sends 5 requests at 2 ms, globex 10 at 8 ms.
    for _slot in 0..10 {
        for (tenant, n, latency_us) in [("acme", 5u64, 2_000u64), ("globex", 10, 8_000)] {
            let _scope = obs.scope("e2e.load");
            grdf::obs::set_tenant(dim.resolve(tenant, now()).label);
            for _ in 0..n {
                grdf::obs::add("server.requests", 1);
                grdf::obs::observe("server.latency", latency_us);
            }
        }
        clock.advance(Duration::from_secs(10));
    }

    // Exact per-tenant attribution over the trailing 5 minutes (the
    // whole run so far).
    let w = Duration::from_mins(5);
    assert_eq!(ws.window_sum("server.requests", Some("acme"), w), 50);
    assert_eq!(ws.window_sum("server.requests", Some("globex"), w), 100);
    assert_eq!(ws.window_sum("server.requests", None, w), 150);
    assert!((ws.rate("server.requests", Some("acme"), w) - 50.0 / 300.0).abs() < 1e-9);
    assert!((ws.rate("server.requests", Some("globex"), w) - 100.0 / 300.0).abs() < 1e-9);
    let acme = ws
        .summary("server.latency", Some("acme"), w)
        .expect("acme summary");
    assert_eq!((acme.count, acme.sum, acme.max), (50, 50 * 2_000, 2_000));
    let globex = ws
        .summary("server.latency", Some("globex"), w)
        .expect("globex summary");
    assert_eq!(
        (globex.count, globex.sum, globex.max),
        (100, 100 * 8_000, 8_000)
    );
    // Windowed p99 lands in each tenant's log₂-bucket value range and
    // the tenants stay distinguishable.
    let p99_acme = ws
        .quantile("server.latency", Some("acme"), w, 0.99)
        .unwrap();
    let p99_globex = ws
        .quantile("server.latency", Some("globex"), w, 0.99)
        .unwrap();
    assert!((1_024..=2_048).contains(&p99_acme), "acme p99: {p99_acme}");
    assert!(
        (4_096..=8_192).contains(&p99_globex),
        "globex p99: {p99_globex}"
    );
    assert!(p99_globex > p99_acme);

    // Multi-window burn-rate: healthy traffic stays under the 20 ms
    // objective, an incident fires it, fast-window recovery clears it.
    let eng = SloEngine::new(vec![Objective::parse(
        "lat: p99(server.latency) < 20ms over 1m",
    )
    .unwrap()]);
    assert_eq!(eng.evaluate(&ws)[0].state, SloState::Ok);
    {
        let _scope = obs.scope("e2e.incident");
        for _ in 0..2_000 {
            grdf::obs::observe("server.latency", 100_000);
        }
    }
    let s = eng.evaluate(&ws).remove(0);
    assert_eq!(s.state, SloState::Burning, "incident should fire: {s:?}");
    assert!(s.burn_fast > 1.0 && s.burn_slow > 1.0);
    clock.advance(Duration::from_secs(70));
    {
        let _scope = obs.scope("e2e.recovery");
        for _ in 0..500 {
            grdf::obs::observe("server.latency", 2_000);
        }
    }
    let s = eng.evaluate(&ws).remove(0);
    assert_eq!(s.state, SloState::Ok, "fast-window recovery clears: {s:?}");
    assert!(s.burn_slow > 1.0, "slow window still remembers: {s:?}");

    // Cardinality: with both live tenants pinning slots and nothing idle
    // long enough to recycle, a burst of fresh ids fills the two free
    // slots and then collapses into `other`.
    for i in 0..1_000 {
        let r = dim.resolve(&format!("burst{i}"), now());
        if i >= 2 {
            assert_eq!(&*r.label, TenantDim::OVERFLOW, "burst{i} must overflow");
        }
    }
    assert!(dim.labels().len() <= 5, "labels: {:?}", dim.labels());
    // 2 teed series names × (global + ≤5 tenant labels) bounds the store.
    assert!(ws.series_count() <= 12, "series: {}", ws.series_count());
}

// ---------------------------------------------------------------------------
// 2. /metrics conformance + exemplar resolution
// ---------------------------------------------------------------------------

#[test]
fn metrics_exposition_conforms_and_exemplars_resolve_in_the_trace_sink() {
    let obs = Obs::with_tracing(256).with_windows(WindowConfig::default(), system_clock());
    let config = ResilienceConfig {
        obs,
        ..ResilienceConfig::default()
    };
    let server =
        GrdfServer::bind("127.0.0.1:0", service(config), ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let wanted = "deadbeefcafe";
    for i in 0..4 {
        let raw = exchange(
            &mut conn,
            &keepalive_request(
                "POST",
                "/query",
                &[
                    ("x-role", &ns::sec("Emergency")),
                    ("x-tenant", "acme"),
                    ("x-trace-id", &format!("{wanted}{i:04}")),
                ],
                select_query().as_bytes(),
            ),
        );
        assert_eq!(status_of(&raw), 200, "{}", body_of(&raw));
    }
    let raw = exchange(&mut conn, &keepalive_request("GET", "/metrics", &[], b""));
    assert_eq!(status_of(&raw), 200);
    assert!(
        String::from_utf8_lossy(&raw).contains("content-type: text/plain; version=0.0.4"),
        "Prometheus content type"
    );
    let text = body_of(&raw);
    let parsed = grdf::obs::expo::parse(&text)
        .unwrap_or_else(|e| panic!("/metrics nonconformant: {e}\n{text}"));

    // Per-tenant windowed gauges for the bounded label.
    let acme_reqs = parsed
        .value_with("grdf_w1m_server_requests", "tenant", "acme")
        .expect("per-tenant request gauge");
    assert!(
        acme_reqs >= 4.0,
        "acme trailing-minute requests: {acme_reqs}"
    );
    assert!(parsed
        .value_with("grdf_w1m_server_latency_p99", "tenant", "acme")
        .is_some());

    // Exemplars on the latency histogram resolve to sink traces.
    let sink_ids: std::collections::BTreeSet<String> = server
        .obs()
        .sink()
        .records()
        .iter()
        .map(|r| r.id.to_string())
        .collect();
    let exemplars: Vec<String> = parsed
        .named("grdf_server_latency_bucket")
        .iter()
        .filter_map(|s| s.exemplar.as_ref().map(|(id, _)| id.clone()))
        .collect();
    assert!(!exemplars.is_empty(), "latency buckets carry exemplars");
    for id in &exemplars {
        assert!(
            sink_ids.contains(id),
            "exemplar {id} not resolvable in the sink ({sink_ids:?})"
        );
    }
    // Our requests pinned their trace ids, so every exemplar at scrape
    // time is one of them (16-hex form of deadbeefcafeNNNN).
    assert!(
        exemplars.iter().any(|id| id.contains(wanted)),
        "no exemplar from the pinned trace ids: {exemplars:?}"
    );

    // The JSON snapshot survives at /metrics.json for diff tooling.
    let raw = exchange(
        &mut conn,
        &keepalive_request("GET", "/metrics.json", &[], b""),
    );
    assert_eq!(status_of(&raw), 200);
    assert!(body_of(&raw).contains("\"counters\""));
    server.shutdown();
}

// ---------------------------------------------------------------------------
// 3. Degraded admission under a burning objective
// ---------------------------------------------------------------------------

#[test]
fn burning_slo_sheds_a_fraction_of_mutating_traffic_but_not_probes() {
    let obs = Obs::new().with_windows(WindowConfig::default(), system_clock());
    let config = ResilienceConfig {
        obs,
        // Impossible objective: any traffic at all burns it.
        slos: vec![Objective::parse("lat: p99(server.latency) < 1us over 1m").unwrap()],
        ..ResilienceConfig::default()
    };
    let server =
        GrdfServer::bind("127.0.0.1:0", service(config), ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let query = |conn: &mut TcpStream| {
        status_of(&exchange(
            conn,
            &keepalive_request(
                "POST",
                "/query",
                &[("x-role", &ns::sec("Emergency"))],
                select_query().as_bytes(),
            ),
        ))
    };
    // Seed latency samples, then outlast the 1 s SLO-cache refresh so
    // the next evaluation sees them.
    for _ in 0..4 {
        assert_eq!(query(&mut conn), 200);
    }
    std::thread::sleep(Duration::from_millis(1100));
    let statuses: Vec<u16> = (0..16).map(|_| query(&mut conn)).collect();
    let shed = statuses.iter().filter(|s| **s == 503).count();
    assert!(
        (1..16).contains(&shed),
        "expected partial shedding, got {shed}/16: {statuses:?}"
    );
    // Probe endpoints stay exempt and report the burning objective.
    let raw = exchange(&mut conn, &keepalive_request("GET", "/health", &[], b""));
    assert_eq!(status_of(&raw), 200);
    assert!(
        body_of(&raw).contains("\"state\": \"burning\""),
        "health carries the burning SLO: {}",
        body_of(&raw)
    );
    assert!(server.obs().registry().counter("server.shed.slo").get() as usize >= shed);
    server.shutdown();
}

/// Regression: SLO-shed 503s must not feed the error-ratio objective
/// they were fired by. If they counted into `server.errors`, shedding
/// 1-in-4 requests would hold the fast window at a 25% error ratio and
/// the server would keep shedding forever after the incident resolved.
#[test]
fn shed_503s_do_not_sustain_an_error_ratio_burn() {
    let clock = Arc::new(ManualClock::new());
    let obs = Obs::new().with_windows(
        WindowConfig::default(),
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    let config = ResilienceConfig {
        obs,
        slos: vec![Objective::parse(
            "err: rate(server.errors) / rate(server.requests) < 10% over 1m",
        )
        .unwrap()],
        ..ResilienceConfig::default()
    };
    let cfg = ServerConfig {
        clock: Arc::clone(&clock) as Arc<dyn Clock>,
        keep_alive_requests: 20_000,
        ..ServerConfig::default()
    };
    let server = GrdfServer::bind("127.0.0.1:0", service(config), cfg).expect("bind");
    let ws = Arc::clone(server.obs().windows().expect("windows"));
    let mut conn = TcpStream::connect(server.local_addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let query = |conn: &mut TcpStream| {
        status_of(&exchange(
            conn,
            &keepalive_request(
                "POST",
                "/query",
                &[("x-role", &ns::sec("Emergency"))],
                select_query().as_bytes(),
            ),
        ))
    };

    // Healthy seed traffic, then an incident: a burst of real errors
    // lands in the windowed store.
    for _ in 0..4 {
        assert_eq!(query(&mut conn), 200);
    }
    ws.add("server.errors", None, 100);
    clock.advance(Duration::from_secs(2)); // outlast the 1 s SLO cache
    let statuses: Vec<u16> = (0..8).map(|_| query(&mut conn)).collect();
    let shed = statuses.iter().filter(|s| **s == 503).count();
    assert!(
        (1..8).contains(&shed),
        "burning objective must shed a fraction: {statuses:?}"
    );

    // Recovery: the incident stops; traffic continues in SLO-cache-sized
    // steps until the injected errors age out of the 1 m fast window.
    // The shed 503s above (and along the way) must not re-enter
    // `server.errors`, or the burn would sustain itself indefinitely.
    for _ in 0..40 {
        clock.advance(Duration::from_secs(2));
        for _ in 0..4 {
            query(&mut conn);
        }
    }
    clock.advance(Duration::from_secs(2));
    let tail: Vec<u16> = (0..8).map(|_| query(&mut conn)).collect();
    assert!(
        tail.iter().all(|s| *s == 200),
        "shedding must clear once the incident ages out: {tail:?}"
    );
    // The only 5xx responses this test produced were self-inflicted
    // sheds, and none of them reached the error counter.
    assert_eq!(server.obs().registry().counter("server.errors").get(), 0);
    assert!(server.obs().registry().counter("server.shed.slo").get() >= shed as u64);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// 4. Trace-id propagation across durability
// ---------------------------------------------------------------------------

#[test]
fn update_trace_id_reaches_wal_checkpoint_spans_and_durable_audit() {
    let mem = Arc::new(MemBackend::new());
    let obs = Obs::with_tracing(256);
    let config = ResilienceConfig {
        obs,
        ..ResilienceConfig::default()
    };
    // A 1-byte checkpoint threshold: every applied update both appends
    // to the WAL and rotates a checkpoint, so one request crosses the
    // full durability surface.
    let svc = GSacs::create_durable(
        Arc::clone(&mem) as Arc<dyn StorageBackend>,
        StoreConfig {
            checkpoint_threshold: 1,
            ..StoreConfig::default()
        },
        OntoRepository::new(),
        policies(),
        Box::<OwlHorstEngine>::default(),
        site_data(8),
        16,
        config,
    )
    .expect("durable service");
    let server = GrdfServer::bind("127.0.0.1:0", svc, ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let trace_id = "feedface0042";
    let update = format!(
        "+ <{}> <{}> \"observed\" .\n",
        ns::app("site0"),
        ns::app("hasInspectionNote")
    );
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let raw = exchange(
        &mut conn,
        &keepalive_request(
            "POST",
            "/update",
            &[("x-role", &ns::sec("Emergency")), ("x-trace-id", trace_id)],
            update.as_bytes(),
        ),
    );
    assert_eq!(status_of(&raw), 200, "{}", body_of(&raw));
    assert!(body_of(&raw).contains("\"applied\": 1"));

    // The spans of exactly that trace cover the WAL append and the
    // checkpoint rotation.
    let full_id = format!("{trace_id:0>16}");
    let record = server
        .obs()
        .sink()
        .records()
        .into_iter()
        .find(|r| r.id.to_string() == full_id)
        .unwrap_or_else(|| panic!("no trace with id {full_id}"));
    let span_names: Vec<&str> = record.spans.iter().map(|s| s.name).collect();
    assert!(
        span_names.contains(&"store.wal.append"),
        "WAL span missing: {span_names:?}"
    );
    assert!(
        span_names.contains(&"store.ckpt.rotate"),
        "checkpoint span missing: {span_names:?}"
    );

    server.shutdown();
    // The durable audit JSONL carries the same trace id on both the
    // update op and the checkpoint entry.
    let files = mem.clone_files();
    let audit = String::from_utf8_lossy(files.get("audit.jsonl").expect("audit file")).to_string();
    let with_id: Vec<&str> = audit.lines().filter(|l| l.contains(&full_id)).collect();
    assert!(
        with_id.iter().any(|l| l.contains("\"update-insert\"")),
        "audit JSONL lacks the traced update: {audit}"
    );
    assert!(
        with_id.iter().any(|l| l.contains("\"checkpoint\"")),
        "audit JSONL lacks the traced checkpoint: {audit}"
    );
}

// ---------------------------------------------------------------------------
// 5. Tenant-cardinality regression (PR 6 left `server.latency.<tenant>`
//    unbounded; the capped tenant dimension replaces it)
// ---------------------------------------------------------------------------

#[test]
fn ten_thousand_tenant_ids_cannot_grow_the_registry_or_window_store() {
    let obs = Obs::new().with_windows(WindowConfig::default(), system_clock());
    let config = ResilienceConfig {
        obs,
        ..ResilienceConfig::default()
    };
    let cfg = ServerConfig {
        keep_alive_requests: 20_000,
        tenant_cap: 8,
        ..ServerConfig::default()
    };
    let server = GrdfServer::bind("127.0.0.1:0", service(config), cfg).expect("bind");
    let addr: SocketAddr = server.local_addr();
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    for i in 0..10_000 {
        let tenant = format!("tenant-{i}");
        let raw = exchange(
            &mut conn,
            &keepalive_request("GET", "/health", &[("x-tenant", &tenant)], b""),
        );
        assert_eq!(status_of(&raw), 200, "request {i}");
    }
    let snapshot = server.obs().registry().snapshot().to_json();
    assert!(
        !snapshot.contains("server.latency.") && !snapshot.contains("tenant-"),
        "registry must hold no per-tenant series: {snapshot}"
    );
    let ws = server.obs().windows().expect("windows");
    // cap + `other`, never one label per raw id.
    assert!(
        ws.tenant_labels().len() <= 9,
        "tenant labels: {:?}",
        ws.tenant_labels()
    );
    assert!(
        ws.series_count() < 100,
        "windowed series must stay bounded: {}",
        ws.series_count()
    );
    server.shutdown();
}
