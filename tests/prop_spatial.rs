//! Property-based tests for the spatial structures: R-tree vs brute force,
//! clipping invariants, and CRS transform round-trips.

use proptest::prelude::*;

use grdf::geometry::clip::{clip_polyline, clip_segment};
use grdf::geometry::crs::{CrsRegistry, TX83_NCF, WGS84};
use grdf::geometry::rtree::RTree;
use grdf::geometry::{Coord, Envelope, LineString};

fn arb_coord() -> impl Strategy<Value = Coord> {
    (-10_000i32..10_000, -10_000i32..10_000)
        .prop_map(|(x, y)| Coord::xy(f64::from(x) / 4.0, f64::from(y) / 4.0))
}

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (arb_coord(), arb_coord()).prop_map(|(a, b)| Envelope::new(a, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- R-tree ----------------------------------------------------------

    #[test]
    fn rtree_bulk_load_matches_brute_force(
        items in prop::collection::vec(arb_envelope(), 0..120),
        window in arb_envelope(),
    ) {
        let tagged: Vec<(Envelope, usize)> =
            items.iter().copied().zip(0..).collect();
        let tree = RTree::bulk_load(tagged.clone());
        prop_assert!(tree.validate());
        let mut got: Vec<usize> = tree.query(&window).into_iter().copied().collect();
        got.sort_unstable();
        let mut want: Vec<usize> = tagged
            .iter()
            .filter(|(e, _)| e.intersects(&window))
            .map(|(_, i)| *i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rtree_incremental_matches_bulk(
        items in prop::collection::vec(arb_envelope(), 1..80),
        window in arb_envelope(),
    ) {
        let tagged: Vec<(Envelope, usize)> =
            items.iter().copied().zip(0..).collect();
        let bulk = RTree::bulk_load(tagged.clone());
        let mut inc = RTree::new();
        for (e, i) in &tagged {
            inc.insert(*e, *i);
        }
        prop_assert!(inc.validate());
        let mut a: Vec<usize> = bulk.query(&window).into_iter().copied().collect();
        let mut b: Vec<usize> = inc.query(&window).into_iter().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rtree_nearest_is_truly_nearest(
        items in prop::collection::vec(arb_envelope(), 1..80),
        probe in arb_coord(),
    ) {
        let tagged: Vec<(Envelope, usize)> =
            items.iter().copied().zip(0..).collect();
        let tree = RTree::bulk_load(tagged.clone());
        let got = *tree.nearest(&probe).unwrap();
        let got_d = tagged[got].0.center().distance_2d(&probe);
        for (e, _) in &tagged {
            prop_assert!(got_d <= e.center().distance_2d(&probe) + 1e-9);
        }
    }

    // ---- clipping ----------------------------------------------------------

    #[test]
    fn clipped_segment_stays_in_window_and_on_line(
        a in arb_coord(),
        b in arb_coord(),
        window in arb_envelope(),
    ) {
        if let Some((p0, p1)) = clip_segment(&a, &b, &window) {
            let eps = 1e-6;
            let fuzzy = window.buffered(eps);
            prop_assert!(fuzzy.contains(&p0), "{p0:?} outside {window:?}");
            prop_assert!(fuzzy.contains(&p1));
            // Clipped points lie on the original segment.
            let d = grdf::geometry::algorithms::point_segment_distance(&p0, &a, &b);
            prop_assert!(d < 1e-6, "clipped point off the line by {d}");
            // The clipped piece is no longer than the original.
            prop_assert!(p0.distance_2d(&p1) <= a.distance_2d(&b) + eps);
        }
    }

    #[test]
    fn clip_polyline_preserves_inside_length(
        coords in prop::collection::vec(arb_coord(), 2..12),
        window in arb_envelope(),
    ) {
        let line = LineString::new(coords).unwrap();
        let pieces = clip_polyline(&line, &window);
        let total: f64 = pieces.iter().map(LineString::length).sum();
        prop_assert!(total <= line.length() + 1e-6);
        let fuzzy = window.buffered(1e-6);
        for p in &pieces {
            for c in &p.coords {
                prop_assert!(fuzzy.contains(c), "{c:?} outside window");
            }
        }
        // A line fully inside must survive unclipped.
        if line.coords.iter().all(|c| window.contains(c)) {
            prop_assert!((total - line.length()).abs() < 1e-6);
        }
    }

    // ---- CRS ----------------------------------------------------------------

    #[test]
    fn crs_transform_roundtrips(lon in -100.0f64..-94.0, lat in 30.0f64..35.0) {
        let reg = CrsRegistry::with_defaults();
        let geo = Coord::xy(lon, lat);
        let projected = reg.transform(WGS84, TX83_NCF, &geo).unwrap();
        let back = reg.transform(TX83_NCF, WGS84, &projected).unwrap();
        prop_assert!(back.approx_eq(&geo, 1e-9), "{back:?} vs {geo:?}");
    }
}
