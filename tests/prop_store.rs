//! Crash-recovery properties for the durable store (`grdf-store`).
//!
//! The durability contract under test:
//!
//! * **Exact surviving-prefix recovery.** Whatever byte the crash lands
//!   on — mid-WAL-record, mid-checkpoint write, between the steps of a
//!   checkpoint rotation — recovery reconstructs exactly the batches that
//!   were acknowledged before the crash: nothing acknowledged is lost,
//!   nothing unacknowledged leaks in.
//! * **Interior corruption fails closed.** A bit flip in a WAL record
//!   that still has valid records after it is not trimmable damage;
//!   recovery refuses with `CorruptInterior` rather than silently
//!   dropping acknowledged history. The torn *tail* (damage with nothing
//!   valid after it) is truncated instead.
//! * The same state recovered from disk entails the same inferences as
//!   the state rebuilt from sources (real-filesystem smoke test).
//!
//! Everything is deterministic: crashes are byte budgets on an injectable
//! [`CrashBackend`], corruption is explicit bit surgery on a
//! [`MemBackend`]. `GRDF_CRASH_QUICK=1` trims the case count for CI smoke
//! runs, and `GRDF_MASTER_SEED` (decimal or `0x`-hex) reseeds the whole
//! generated-case sweep — budgets, batches, flip positions — through the
//! property harness, so CI can run many masters and any failure replays
//! locally with the same env var.

use std::sync::Arc;

use proptest::prelude::*;

use grdf::rdf::graph::Graph;
use grdf::rdf::term::{Term, Triple};
use grdf::store::{
    recover, verify, CrashBackend, DurableStore, FsyncPolicy, LoggedOp, MemBackend, StorageBackend,
    StoreConfig, StoreError,
};

fn cases() -> u32 {
    if std::env::var("GRDF_CRASH_QUICK").is_ok() {
        8
    } else {
        48
    }
}

/// A small closed universe of triples so deletes can hit earlier inserts.
fn triple(s: usize, p: usize, o: usize) -> Triple {
    Triple::new(
        Term::iri(&format!("urn:crash:s{s}")),
        Term::iri(&format!("urn:crash:p{p}")),
        Term::iri(&format!("urn:crash:o{o}")),
    )
}

fn base_graph() -> Graph {
    let mut g = Graph::new();
    for i in 0..4 {
        g.insert(triple(i, 0, 0));
    }
    g
}

type OpSpec = (bool, usize, usize, usize);

fn to_ops(batch: &[OpSpec]) -> Vec<LoggedOp> {
    batch
        .iter()
        .map(|&(insert, s, p, o)| {
            if insert {
                LoggedOp::Insert(triple(s, p, o))
            } else {
                LoggedOp::Delete(triple(s, p, o))
            }
        })
        .collect()
}

fn apply(model: &mut Graph, ops: &[LoggedOp]) {
    for op in ops {
        match op {
            LoggedOp::Insert(t) => {
                model.insert(t.clone());
            }
            LoggedOp::Delete(t) => {
                model.remove(t);
            }
        }
    }
}

/// Seed a store (no crash), then re-open and run `batches` through a
/// [`CrashBackend`] with `budget` bytes. Returns the surviving files and
/// the model graph of acknowledged batches.
fn run_crashy(
    batches: &[Vec<OpSpec>],
    budget: u64,
    checkpoint_threshold: u64,
) -> (MemBackend, Graph) {
    let config = StoreConfig {
        fsync: FsyncPolicy::Always,
        checkpoint_threshold,
    };
    let policy_graph = Graph::new();
    let mut model = base_graph();
    let seed = Arc::new(MemBackend::new());
    DurableStore::create(
        Arc::clone(&seed) as Arc<dyn StorageBackend>,
        config,
        &model,
        &policy_graph,
    )
    .expect("seed store");
    let crashy = Arc::new(CrashBackend::new(
        MemBackend::from_files(seed.clone_files()),
        budget,
    ));
    // Re-open through the crash budget, exactly as a process that boots
    // and then dies mid-write would.
    if let Ok((store, _)) =
        DurableStore::open(Arc::clone(&crashy) as Arc<dyn StorageBackend>, config)
    {
        for batch in batches {
            let ops = to_ops(batch);
            if store.append_batch(&ops).is_err() {
                // Unacknowledged: the crash fired inside this record (or
                // the store is already poisoned). Not part of the model.
                break;
            }
            apply(&mut model, &ops);
            // Rotation failures are not data loss: the old checkpoint +
            // longer WAL remain valid, so errors here are ignored.
            let _ = store.maybe_checkpoint(&model, &policy_graph);
        }
    }
    // else: the crash fired during the boot-counter bump; nothing was
    // acknowledged, the model is the seeded base.
    (MemBackend::from_files(crashy.inner().clone_files()), model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// The core crash property: for ANY byte budget, recovery over the
    /// surviving files reconstructs exactly the acknowledged prefix.
    /// Budgets start below the 8-byte boot bump (crash before anything is
    /// acknowledged) and run past the total write volume (no crash at
    /// all), so torn records, torn checkpoint tmp files, and crashes
    /// between rotation steps all occur along the way.
    fn recovery_restores_exactly_the_acknowledged_prefix(
        batches in prop::collection::vec(
            prop::collection::vec((prop::bool::ANY, 0..6usize, 0..3usize, 0..4usize), 1..6),
            1..12,
        ),
        budget in 0u64..6000,
    ) {
        let (survivors, model) = run_crashy(&batches, budget, u64::MAX);
        let recovered = recover(&survivors).expect("crashes only tear tails; recovery must succeed");
        prop_assert_eq!(&recovered.base, &model, "recovered state != acknowledged prefix");
        let report = verify(&survivors).expect("verify walks survivors");
        prop_assert!(report.recoverable);
    }

    /// Same property with an aggressive rotation threshold, so most of
    /// the byte budget range lands inside checkpoint writes and the
    /// multi-step rotation protocol (write → new segment → GC) rather
    /// than inside WAL appends.
    fn recovery_survives_crashes_inside_checkpoint_rotation(
        batches in prop::collection::vec(
            prop::collection::vec((prop::bool::ANY, 0..6usize, 0..3usize, 0..4usize), 1..6),
            1..12,
        ),
        budget in 0u64..8000,
    ) {
        let (survivors, model) = run_crashy(&batches, budget, 96);
        let recovered = recover(&survivors).expect("rotation crashes must stay recoverable");
        prop_assert_eq!(&recovered.base, &model, "recovered state != acknowledged prefix");
    }

    /// Interior corruption: flip one bit of a non-final WAL record and
    /// recovery must refuse outright — acknowledged history after the
    /// damage exists, so truncating would silently lose it, and decoding
    /// around it would fabricate state.
    fn interior_bit_flips_fail_closed(
        flip_byte in 0usize..200,
        flip_bit in 0u8..8,
        extra_batches in 1usize..6,
    ) {
        let config = StoreConfig { fsync: FsyncPolicy::Always, checkpoint_threshold: u64::MAX };
        let mem = Arc::new(MemBackend::new());
        let store = DurableStore::create(
            Arc::clone(&mem) as Arc<dyn StorageBackend>,
            config,
            &base_graph(),
            &Graph::new(),
        ).expect("create");
        for i in 0..=extra_batches {
            store.append_batch(&[LoggedOp::Insert(triple(i, 1, 1))]).expect("append");
        }
        drop(store);
        let wal = "wal-0000000000000000";
        let bytes = mem.read(wal).expect("read wal");
        // Land the flip inside the FIRST record (header or payload), so
        // valid records always follow the damage.
        let first_len = 8 + u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        let pos = flip_byte % first_len;
        mem.flip_bit(wal, pos, 1 << flip_bit);
        match recover(mem.as_ref()) {
            Err(StoreError::CorruptInterior { .. }) => {}
            Err(other) => prop_assert!(false, "expected CorruptInterior, got {other}"),
            Ok(r) => prop_assert!(
                false,
                "recovery returned {} triples through interior corruption",
                r.base.len()
            ),
        }
        let report = verify(mem.as_ref()).expect("verify still walks");
        prop_assert!(!report.recoverable, "verify must agree the store is unrecoverable");
    }
}

/// Real-filesystem smoke test: seed, mutate, checkpoint, "restart", and
/// check that the recovered state entails the same inferences as the
/// state rebuilt from sources. This is the one store test that exercises
/// actual fsync/rename syscalls end to end.
#[test]
fn real_fs_recovery_smoke() {
    use grdf::owl::reasoner::Reasoner;
    use grdf::store::FsBackend;

    let dir = std::env::temp_dir().join(format!("grdf-prop-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let config = StoreConfig {
        fsync: FsyncPolicy::Always,
        checkpoint_threshold: 512,
    };
    let mut model = grdf::core::ontology::grdf_ontology();
    let backend = Arc::new(FsBackend::open(&dir).expect("open fs backend"));
    let store = DurableStore::create(
        Arc::clone(&backend) as Arc<dyn StorageBackend>,
        config,
        &model,
        &Graph::new(),
    )
    .expect("create store");
    for i in 0..40 {
        let ops = vec![LoggedOp::Insert(triple(i, i % 3, i % 5))];
        store.append_batch(&ops).expect("append");
        apply(&mut model, &ops);
        let _ = store.maybe_checkpoint(&model, &Graph::new());
    }
    drop(store);
    drop(backend);

    // "Restart": everything re-read from real files.
    let backend = FsBackend::open(&dir).expect("reopen fs backend");
    let recovered = recover(&backend).expect("recover from real fs");
    assert_eq!(
        recovered.base, model,
        "recovered base != source-of-truth model"
    );
    let report = verify(&backend).expect("verify real fs");
    assert!(report.recoverable, "{:?}", report.failure);

    // Same entailments either way.
    let mut from_disk = recovered.base.clone();
    let mut from_sources = model.clone();
    Reasoner::default().materialize(&mut from_disk);
    Reasoner::default().materialize(&mut from_sources);
    assert_eq!(
        from_disk, from_sources,
        "recovered state must entail the same inferences"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
