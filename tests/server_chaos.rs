//! Socket-level chaos suite for `grdf-server`: seeded byte-level faults
//! against a live listener, with three properties under test:
//!
//! 1. **No torn responses** — every fault ends in a clean teardown (zero
//!    bytes) or a complete, well-formed HTTP response.
//! 2. **Fail closed** — a restricted role's responses never carry the
//!    secret literal, under faults or not; error envelopes carry no data.
//! 3. **Survival** — after the whole campaign the server still answers
//!    fresh requests correctly, and a graceful drain loses nothing.
//!
//! The campaign's fault schedule derives from a [`SeedTree`] lane;
//! `GRDF_MASTER_SEED` (decimal or `0x`-hex) reseeds it so CI can sweep
//! masters and a failing campaign replays locally verbatim.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use grdf::feature::{encode_feature, Feature};
use grdf::obs::Obs;
use grdf::rdf::vocab::grdf as ns;
use grdf::rdf::Graph;
use grdf::runtime::SeedTree;
use grdf::security::gsacs::{GSacs, OntoRepository, OwlHorstEngine};
use grdf::security::policy::{Policy, PolicySet};
use grdf::security::resilience::ResilienceConfig;
use grdf::server::{build_request, run_case, well_formed_response, GrdfServer, ServerConfig};

/// The sensitive literal the restricted role must never see on the wire.
const SECRET: &str = "XYZZY-CHEM-CODE";

fn service(config: ResilienceConfig) -> GSacs {
    let mut data = Graph::new();
    for i in 0..8 {
        let mut site = Feature::new(&ns::app(&format!("site{i}")), "ChemSite");
        site.set_property("hasSiteName", format!("Site {i}").as_str());
        site.set_property("hasChemCode", format!("{SECRET}-{i}").as_str());
        encode_feature(&mut data, &site);
    }
    // MainRep sees ChemSites but only their boundary property — the chem
    // codes are outside its view. Emergency sees everything.
    let policies = PolicySet::new(vec![
        Policy::permit_properties(
            &ns::sec("MainRepPolicy1"),
            &ns::sec("MainRep"),
            &ns::app("ChemSite"),
            &[&ns::iri("isBoundedBy")],
        ),
        Policy::permit(&ns::sec("E1"), &ns::sec("Emergency"), &ns::app("ChemSite")),
    ]);
    GSacs::with_resilience(
        OntoRepository::new(),
        policies,
        Box::<OwlHorstEngine>::default(),
        data,
        16,
        config,
    )
}

fn chem_query() -> String {
    format!(
        "PREFIX app: <{}>\nSELECT ?c WHERE {{ ?s app:hasChemCode ?c }}",
        ns::APP_NS
    )
}

/// A server tuned for chaos: few workers, short slow-client timeouts.
fn boot(config: ResilienceConfig) -> GrdfServer {
    let cfg = ServerConfig {
        workers: 2,
        read_timeout: Duration::from_millis(150),
        write_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    GrdfServer::bind("127.0.0.1:0", service(config), cfg).expect("bind")
}

/// One whole-request exchange: write `bytes`, collect the response until
/// the server closes the connection.
fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.set_nodelay(true).unwrap();
    s.write_all(bytes).expect("write");
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    out
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

fn status_of(raw: &[u8]) -> u16 {
    let text = String::from_utf8_lossy(raw);
    text.split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0)
}

#[test]
fn seeded_socket_faults_never_tear_responses_or_leak_the_secret() {
    let server = boot(ResilienceConfig::default());
    let addr = server.local_addr();
    let decider = SeedTree::from_env("GRDF_MASTER_SEED", 0xC4A05)
        .child("server.chaos")
        .decider();
    let restricted = build_request(
        "/query",
        &[("x-role", &ns::sec("MainRep"))],
        chem_query().as_bytes(),
    );

    for n in 0..60 {
        let outcome = run_case(addr, &decider, n, &restricted, Duration::from_secs(2))
            .expect("chaos case I/O");
        assert!(
            outcome.ok,
            "case {n} ({:?}): torn response:\n{}",
            outcome.fault,
            String::from_utf8_lossy(&outcome.response)
        );
        assert!(
            !contains(&outcome.response, SECRET.as_bytes()),
            "case {n} ({:?}): secret leaked to a restricted role",
            outcome.fault
        );
    }

    // The campaign over, the server still serves — and still enforces.
    let authorized = send_raw(
        addr,
        &build_request(
            "/query",
            &[("x-role", &ns::sec("Emergency"))],
            chem_query().as_bytes(),
        ),
    );
    assert!(well_formed_response(&authorized));
    assert_eq!(status_of(&authorized), 200);
    assert!(
        contains(&authorized, SECRET.as_bytes()),
        "the authorized role must actually see the codes (else the denial below proves nothing)"
    );

    let denied = send_raw(addr, &restricted);
    assert!(well_formed_response(&denied));
    assert_eq!(
        status_of(&denied),
        200,
        "a filtered view is a success, just an empty one"
    );
    assert!(
        !contains(&denied, SECRET.as_bytes()),
        "restricted view leaked the secret on the clean path"
    );

    let (accepted, finished) = server.shutdown();
    assert_eq!(
        accepted, finished,
        "graceful drain must serve every accepted connection"
    );
}

#[test]
fn oversized_requests_are_rejected_with_bounded_errors() {
    let server = boot(ResilienceConfig::default());
    let addr = server.local_addr();

    // Body larger than the 1 MiB cap: refused from the declared length
    // alone, before any buffer grows to match it.
    let big_body = format!(
        "POST /query HTTP/1.1\r\nx-role: r\r\ncontent-length: {}\r\nconnection: close\r\n\r\npartial",
        8 * 1024 * 1024
    );
    let raw = send_raw(addr, big_body.as_bytes());
    assert!(
        well_formed_response(&raw),
        "{}",
        String::from_utf8_lossy(&raw)
    );
    assert_eq!(status_of(&raw), 413);

    // A head that never ends: bounded at 16 KiB, answered 431.
    let mut huge_head = b"GET /health HTTP/1.1\r\n".to_vec();
    for i in 0..2000 {
        huge_head.extend_from_slice(format!("x-pad-{i}: {i:040}\r\n").as_bytes());
    }
    let raw = send_raw(addr, &huge_head);
    assert!(
        well_formed_response(&raw),
        "{}",
        String::from_utf8_lossy(&raw)
    );
    assert_eq!(status_of(&raw), 431);

    let (accepted, finished) = server.shutdown();
    assert_eq!(accepted, finished);
}

#[test]
fn protocol_errors_map_to_well_formed_client_errors() {
    let server = boot(ResilienceConfig::default());
    let addr = server.local_addr();

    let cases: &[(&[u8], u16)] = &[
        (b"NOT HTTP AT ALL\r\n\r\n", 400),
        (b"GET /nope HTTP/1.1\r\ncontent-length: 0\r\nconnection: close\r\n\r\n", 404),
        (b"PUT /query HTTP/1.1\r\ncontent-length: 0\r\nconnection: close\r\n\r\n", 405),
        (
            b"POST /query HTTP/1.1\r\nx-role: r\r\ndeadline-ms: 0\r\ncontent-length: 3\r\nconnection: close\r\n\r\nASK",
            400,
        ),
        (
            b"POST /query HTTP/1.1\r\nx-role: r\r\ndeadline-ms: soon\r\ncontent-length: 3\r\nconnection: close\r\n\r\nASK",
            400,
        ),
        (
            b"POST /query HTTP/1.1\r\ncontent-length: 3\r\nconnection: close\r\n\r\nASK",
            400, // missing x-role
        ),
    ];
    for (wire, want) in cases {
        let raw = send_raw(addr, wire);
        assert!(
            well_formed_response(&raw),
            "{}",
            String::from_utf8_lossy(&raw)
        );
        assert_eq!(
            status_of(&raw),
            *want,
            "for request:\n{}",
            String::from_utf8_lossy(wire)
        );
    }

    let (accepted, finished) = server.shutdown();
    assert_eq!(accepted, finished);
}

#[test]
fn probe_endpoints_serve_health_and_metrics_json() {
    let server = boot(ResilienceConfig::default());
    let addr = server.local_addr();

    let health = send_raw(addr, &build_request("/health", &[], b""));
    assert_eq!(status_of(&health), 200);
    let text = String::from_utf8_lossy(&health);
    for field in ["\"reasoner\":", "\"requests\":", "\"p99_us\":"] {
        assert!(text.contains(field), "missing {field} in {text}");
    }

    // /metrics is the Prometheus text exposition now; the JSON registry
    // snapshot moved to /metrics.json.
    let metrics = send_raw(addr, &build_request("/metrics", &[], b""));
    assert_eq!(status_of(&metrics), 200);
    let text = String::from_utf8_lossy(&metrics);
    assert!(text.contains("text/plain; version=0.0.4"), "{text}");
    assert!(text.contains("grdf_server_requests_total"), "{text}");

    let metrics_json = send_raw(addr, &build_request("/metrics.json", &[], b""));
    assert_eq!(status_of(&metrics_json), 200);
    let text = String::from_utf8_lossy(&metrics_json);
    assert!(text.contains("server.requests"), "{text}");

    server.shutdown();
}

#[test]
fn trace_ids_propagate_from_header_to_span_tree() {
    // Tracing on: /trace returns the request's own spans, keyed by the
    // caller-supplied id.
    let config = ResilienceConfig {
        obs: Obs::with_tracing(256),
        ..ResilienceConfig::default()
    };
    let server = boot(config);
    let addr = server.local_addr();

    let raw = send_raw(
        addr,
        &build_request(
            "/trace",
            &[
                ("x-role", &ns::sec("Emergency")),
                ("x-trace-id", "deadbeef"),
            ],
            b"ASK { ?s ?p ?o }",
        ),
    );
    assert!(
        well_formed_response(&raw),
        "{}",
        String::from_utf8_lossy(&raw)
    );
    assert_eq!(status_of(&raw), 200);
    let text = String::from_utf8_lossy(&raw);
    // The id is echoed both as a header and in the body, zero-padded to
    // the 16-hex wire form.
    assert!(text.contains("x-trace-id: 00000000deadbeef"), "{text}");
    assert!(
        text.contains("\"trace_id\": \"00000000deadbeef\""),
        "{text}"
    );
    assert!(
        text.contains("server.request"),
        "span tree must include the root span: {text}"
    );
    assert!(
        text.contains("\"result\": {\"type\": \"boolean\", \"value\": true}"),
        "{text}"
    );

    server.shutdown();
}
