//! Multi-tenant stress for `grdf-server`: 8 client threads over real
//! sockets. Three properties:
//!
//! * **exact accounting** — `server.requests` and the per-tenant
//!   windowed latency series reconcile exactly with what clients
//!   observed (the registry holds one shared histogram; tenants live in
//!   the cardinality-bounded window store);
//! * **quota isolation** — a flooding tenant is shed with 429s while a
//!   paced tenant riding the same server sees zero shed and bounded p99;
//! * **drain completeness** — connections in flight at shutdown are all
//!   served before the workers exit.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use grdf::feature::{encode_feature, Feature};
use grdf::rdf::vocab::grdf as ns;
use grdf::rdf::Graph;
use grdf::security::gsacs::{GSacs, OntoRepository, OwlHorstEngine};
use grdf::security::policy::{Policy, PolicySet};
use grdf::security::resilience::ResilienceConfig;
use grdf::server::{build_request, well_formed_response, GrdfServer, QuotaConfig, ServerConfig};

const THREADS: usize = 8;
const REQUESTS_PER_THREAD: usize = 25;

fn service() -> GSacs {
    service_with(ResilienceConfig::default())
}

fn service_with(config: ResilienceConfig) -> GSacs {
    let mut data = Graph::new();
    for i in 0..10 {
        let mut site = Feature::new(&ns::app(&format!("site{i}")), "ChemSite");
        site.set_property("hasSiteName", format!("Site {i}").as_str());
        encode_feature(&mut data, &site);
    }
    let policies = PolicySet::new(vec![Policy::permit(
        &ns::sec("E1"),
        &ns::sec("Emergency"),
        &ns::app("ChemSite"),
    )]);
    GSacs::with_resilience(
        OntoRepository::new(),
        policies,
        Box::<OwlHorstEngine>::default(),
        data,
        16,
        config,
    )
}

/// One request for `tenant`, whole-exchange; returns the status code and
/// round-trip latency. Panics on a torn response — that is the invariant.
fn exchange(addr: SocketAddr, tenant: &str) -> (u16, Duration) {
    let request = build_request(
        "/query",
        &[("x-role", &ns::sec("Emergency")), ("x-tenant", tenant)],
        b"ASK { ?s ?p ?o }",
    );
    let start = Instant::now();
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).unwrap();
    s.write_all(&request).expect("write");
    let mut raw = Vec::new();
    let _ = s.read_to_end(&mut raw);
    assert!(
        well_formed_response(&raw),
        "torn response for tenant {tenant}:\n{}",
        String::from_utf8_lossy(&raw)
    );
    let status: u16 = String::from_utf8_lossy(&raw)
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    (status, start.elapsed())
}

#[test]
fn eight_tenants_reconcile_exactly_with_server_accounting() {
    let cfg = ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    };
    let config = ResilienceConfig {
        obs: grdf::obs::Obs::new().with_windows(
            grdf::obs::WindowConfig::default(),
            grdf::runtime::system_clock(),
        ),
        ..ResilienceConfig::default()
    };
    let server = GrdfServer::bind("127.0.0.1:0", service_with(config), cfg).expect("bind");
    let addr = server.local_addr();

    let observed: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let tenant = format!("t{t}");
                    let mut ok = 0u64;
                    for _ in 0..REQUESTS_PER_THREAD {
                        let (status, _) = exchange(addr, &tenant);
                        assert_eq!(status, 200, "tenant {tenant}");
                        ok += 1;
                    }
                    ok
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let total: u64 = observed.iter().sum();
    assert_eq!(total, (THREADS * REQUESTS_PER_THREAD) as u64);
    assert_eq!(
        server.requests_total(),
        total,
        "every client-observed response must be a counted request"
    );
    let snap = server.obs().registry().snapshot();
    assert_eq!(snap.counters["server.requests"], total);
    // Per-tenant latency lives in the windowed store now (bounded by the
    // tenant dimension), not as per-tenant registry histograms: exactly
    // one sample per request, filed under the right tenant label.
    let ws = server.obs().windows().expect("windowed store");
    let window = Duration::from_mins(5);
    for t in 0..THREADS {
        let summary = ws
            .summary("server.latency", Some(&format!("t{t}")), window)
            .expect("tenant series");
        assert_eq!(
            summary.count, REQUESTS_PER_THREAD as u64,
            "tenant t{t} windowed series must hold exactly its own requests"
        );
    }
    assert!(!snap.histograms.contains_key("server.latency.t0"));
    assert_eq!(snap.histograms["server.latency"].count, total);

    let (accepted, finished) = server.shutdown();
    assert_eq!(
        accepted, finished,
        "drain must finish every accepted connection"
    );
    assert_eq!(
        accepted, total,
        "one connection per request (connection: close)"
    );
}

#[test]
fn flooding_tenant_is_shed_while_paced_tenant_is_untouched() {
    let cfg = ServerConfig {
        workers: 4,
        quota: QuotaConfig {
            rate_per_sec: 50.0,
            burst: 5.0,
        },
        ..ServerConfig::default()
    };
    let server = GrdfServer::bind("127.0.0.1:0", service(), cfg).expect("bind");
    let addr = server.local_addr();

    let (noisy_ok, noisy_shed, calm_latencies) = std::thread::scope(|scope| {
        let noisy = scope.spawn(move || {
            let mut ok = 0u64;
            let mut shed = 0u64;
            for _ in 0..150 {
                match exchange(addr, "noisy") {
                    (200, _) => ok += 1,
                    (429, _) => shed += 1,
                    (status, _) => panic!("unexpected status {status} for the flooder"),
                }
            }
            (ok, shed)
        });
        let calm = scope.spawn(move || {
            // ~20 req/s: well inside a 50/s quota, even with the flood on.
            let mut latencies = Vec::new();
            for _ in 0..25 {
                let (status, latency) = exchange(addr, "calm");
                assert_eq!(status, 200, "the paced tenant must never be shed");
                latencies.push(latency);
                std::thread::sleep(Duration::from_millis(50));
            }
            latencies
        });
        let (ok, shed) = noisy.join().unwrap();
        let latencies = calm.join().unwrap();
        (ok, shed, latencies)
    });

    assert!(
        noisy_shed > 0,
        "a tight-loop flood against a 50/s quota must see 429s (got {noisy_ok} OKs)"
    );
    assert!(noisy_ok >= 5, "the burst allowance itself must be admitted");

    // The paced tenant's p99, measured client-side, stays bounded: the
    // flood is shed at admission, not queued in front of other tenants.
    let mut sorted = calm_latencies.clone();
    sorted.sort();
    let p99 = sorted[(sorted.len() * 99).div_ceil(100).min(sorted.len()) - 1];
    assert!(
        p99 < Duration::from_secs(1),
        "calm tenant p99 {p99:?} blew past its bound while another tenant flooded"
    );

    let snap = server.obs().registry().snapshot();
    assert_eq!(
        snap.counters["server.shed.quota"], noisy_shed,
        "every 429 is a counted quota shed, and only the flooder was shed"
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_connections_already_accepted() {
    let cfg = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let server = GrdfServer::bind("127.0.0.1:0", service(), cfg).expect("bind");
    let addr = server.local_addr();

    // Park 6 full requests on the server — more than the worker count, so
    // some sit in the queue — then begin the drain before reading any
    // response.
    let request = build_request(
        "/query",
        &[("x-role", &ns::sec("Emergency"))],
        b"ASK { ?s ?p ?o }",
    );
    let mut streams: Vec<TcpStream> = (0..6)
        .map(|_| {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s.write_all(&request).expect("write");
            s
        })
        .collect();
    // Let the accept loop pull them all off the listener first.
    std::thread::sleep(Duration::from_millis(200));

    let drain = std::thread::spawn(move || server.shutdown());

    for (i, s) in streams.iter_mut().enumerate() {
        let mut raw = Vec::new();
        let _ = s.read_to_end(&mut raw);
        assert!(
            well_formed_response(&raw),
            "conn {i} was dropped mid-drain:\n{}",
            String::from_utf8_lossy(&raw)
        );
        assert!(
            raw.starts_with(b"HTTP/1.1 200"),
            "conn {i}: {}",
            String::from_utf8_lossy(&raw)
        );
    }
    let (accepted, finished) = drain.join().unwrap();
    assert_eq!(accepted, 6);
    assert_eq!(
        finished, 6,
        "every accepted connection must be served to completion"
    );
}
