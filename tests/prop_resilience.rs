//! Deterministic fault-injection properties for the G-SACS service layer.
//!
//! A seeded [`FaultPlan`] injects errors and clock-advancing stalls into
//! every pipeline stage of a service running on a [`ManualClock`], and the
//! suite asserts the fail-closed invariants:
//!
//! * the service never panics, whatever faults fire;
//! * no response leaks beyond the role's fault-free secure view — every
//!   row a faulty service returns is a row the reference service returns;
//! * every request produces exactly one audit entry, success or failure;
//! * after faults stop and the breaker cooldown elapses, the breaker is
//!   no longer open and the service can recover.
//!
//! Everything is deterministic: time is manual, fault decisions are pure
//! functions of `(seed, stage, sequence)`, and no wall sleeps occur.
//! Each case's plan draws from a per-case [`SeedTree`] lane under
//! `GRDF_MASTER_SEED` (decimal or `0x`-hex), so one env var resweeps the
//! whole suite and a failing CI master replays locally verbatim.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use grdf::feature::{encode_feature, Feature};
use grdf::rdf::vocab::grdf as ns;
use grdf::rdf::Graph;
use grdf::runtime::{Budget, Clock, ManualClock, SeedTree};
use grdf::security::gsacs::{ClientRequest, GSacs, OwlHorstEngine, ReasoningEngine};
use grdf::security::policy::{Policy, PolicySet};
use grdf::security::resilience::{
    BreakerState, FaultPlan, FaultyEngine, GsacsError, ResilienceConfig,
};

fn incident_data() -> Graph {
    let mut g = Graph::new();
    let mut site = Feature::new(&ns::app("NTEnergy"), "ChemSite");
    site.set_property("hasSiteName", "NT Energy");
    site.set_property("hasChemCode", "121NR");
    encode_feature(&mut g, &site);
    let mut stream = Feature::new(&ns::app("WhiteRock"), "Stream");
    stream.set_property("hasObjectID", 11070i64);
    encode_feature(&mut g, &stream);
    g
}

fn policies() -> PolicySet {
    PolicySet::new(vec![
        Policy::permit_properties(
            &ns::sec("MainRepPolicy1"),
            &ns::sec("MainRep"),
            &ns::app("ChemSite"),
            &[&ns::iri("isBoundedBy")],
        ),
        Policy::permit(
            &ns::sec("MainRepPolicy2"),
            &ns::sec("MainRep"),
            &ns::app("Stream"),
        ),
        Policy::permit(&ns::sec("E1"), &ns::sec("Emergency"), &ns::app("ChemSite")),
        Policy::permit(&ns::sec("E2"), &ns::sec("Emergency"), &ns::app("Stream")),
    ])
}

const ROLES: &[&str] = &["MainRep", "Emergency", "Nobody"];

fn queries() -> Vec<String> {
    vec![
        format!(
            "PREFIX app: <{}>\nSELECT ?c WHERE {{ ?s app:hasChemCode ?c }}",
            ns::APP_NS
        ),
        format!(
            "PREFIX app: <{}>\nSELECT ?n WHERE {{ ?s app:hasSiteName ?n }}",
            ns::APP_NS
        ),
        format!(
            "PREFIX app: <{}>\nSELECT ?o WHERE {{ ?s app:hasObjectID ?o }}",
            ns::APP_NS
        ),
        format!(
            "PREFIX app: <{}>\nSELECT ?s WHERE {{ ?s a app:Stream }}",
            ns::APP_NS
        ),
        "THIS IS NOT SPARQL".to_string(),
    ]
}

/// A fault-free reference service on the same data and policies; its
/// answers are the leak ceiling for any faulty run.
fn reference_service() -> GSacs {
    GSacs::new(
        grdf::security::gsacs::OntoRepository::new(),
        policies(),
        Box::<OwlHorstEngine>::default(),
        incident_data(),
        64,
    )
}

/// A service whose every stage is fault-injected from `seed`, running on
/// a manual clock with a real per-request deadline budget.
fn faulty_service(
    seed: u64,
    error_rate: f64,
    latency_rate: f64,
) -> (GSacs, Arc<ManualClock>, Arc<FaultPlan>) {
    let clock = Arc::new(ManualClock::new());
    // Stalls (40ms) are shorter than the budget (100ms), so a single
    // stall is survivable but stacked stalls blow the deadline.
    // `seed` names a lane under the master, so the suite sweeps with
    // `GRDF_MASTER_SEED` while each case stays a pure replayable
    // function of `(master, seed)`.
    let plan = Arc::new(FaultPlan::from_tree(
        &SeedTree::from_env("GRDF_MASTER_SEED", 0xFA0175EED).child_n("resilience.case", seed),
        error_rate,
        latency_rate,
        Duration::from_millis(40),
    ));
    let config = ResilienceConfig {
        clock: clock.clone(),
        request_budget: Budget::with_time(Duration::from_millis(100)),
        fault_injector: Some(plan.clone()),
        ..ResilienceConfig::default()
    };
    let engine = FaultyEngine::new(
        Box::<OwlHorstEngine>::default(),
        plan.clone(),
        clock.clone(),
    );
    let svc = GSacs::with_resilience(
        grdf::security::gsacs::OntoRepository::new(),
        policies(),
        Box::new(engine),
        incident_data(),
        64,
        config,
    );
    (svc, clock, plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under arbitrary injected faults the service never panics, never
    /// leaks beyond the fault-free view, audits every decision, and the
    /// breaker leaves the open state once faults stop and cooldown passes.
    fn faulty_service_is_fail_closed(
        seed in any::<u64>(),
        error_rate in 0.0f64..0.4,
        latency_rate in 0.0f64..0.4,
        picks in prop::collection::vec((0..3usize, 0..5usize), 1..25),
    ) {
        let reference = reference_service();
        let (svc, clock, _plan) = faulty_service(seed, error_rate, latency_rate);

        let qs = queries();
        let mut handled = 0u64;
        for (r, q) in &picks {
            let role = ns::sec(ROLES[*r]);
            let query = qs[*q].clone();
            handled += 1;
            match svc.handle(&ClientRequest { role: role.clone(), query: query.clone() }) {
                Ok(result) => {
                    // No leak: every returned row must also be produced by
                    // the fault-free reference service for this role. A
                    // degraded (un-inferred, conservative) service may
                    // answer with fewer rows, never more.
                    let reference_result = reference
                        .handle(&ClientRequest { role, query })
                        .expect("reference service is fault-free on valid queries");
                    let ceiling = reference_result.select_rows();
                    for row in result.select_rows() {
                        prop_assert!(
                            ceiling.contains(row),
                            "faulty service leaked a row absent from the fault-free view",
                        );
                    }
                }
                Err(
                    GsacsError::Parse(_)
                    | GsacsError::DeadlineExceeded { .. }
                    | GsacsError::Overloaded { .. }
                    | GsacsError::Engine(_)
                    | GsacsError::Internal(_)
                    | GsacsError::LintRejected(_),
                ) => {
                    // Fail-closed: errors carry no data.
                }
            }
        }

        // Audit completeness: one `query` entry per handled request (the
        // capacity default is far above this workload, so nothing drops).
        let query_entries =
            svc.audit_log().iter().filter(|e| e.action == "query").count() as u64;
        prop_assert_eq!(query_entries, handled, "every decision must be audited");
        prop_assert_eq!(svc.audit_dropped(), 0);

        // Health must stay coherent.
        let h = svc.health();
        prop_assert_eq!(h.requests, handled);
        prop_assert_eq!(h.cache_hits + h.cache_misses, svc.cache_lookups());

        // Recovery: faults only fire through the injector; once cooldown
        // passes on the manual clock the breaker cannot still be open.
        clock.advance(ResilienceConfig::default().breaker.cooldown);
        prop_assert!(
            svc.health().breaker != BreakerState::Open,
            "breaker must leave Open after cooldown",
        );
    }

    /// Fault decisions are a pure function of the seed: two services built
    /// from the same seed answer every request identically.
    fn same_seed_same_behavior(
        seed in any::<u64>(),
        picks in prop::collection::vec((0..3usize, 0..5usize), 1..12),
    ) {
        let (a, _, _) = faulty_service(seed, 0.25, 0.25);
        let (b, _, _) = faulty_service(seed, 0.25, 0.25);
        let qs = queries();
        for (r, q) in &picks {
            let req = ClientRequest { role: ns::sec(ROLES[*r]), query: qs[*q].clone() };
            let ra = a.handle(&req);
            let rb = b.handle(&req);
            prop_assert_eq!(
                ra.is_ok(),
                rb.is_ok(),
                "same seed must replay the same outcome",
            );
            if let (Ok(x), Ok(y)) = (ra, rb) {
                prop_assert_eq!(x.select_rows(), y.select_rows());
            }
        }
        prop_assert_eq!(a.is_degraded(), b.is_degraded());
    }
}

/// With an always-erroring reasoner stage the service degrades at
/// construction, keeps serving, and every request is still audited.
#[test]
fn total_reasoner_failure_degrades_but_serves() {
    let clock = Arc::new(ManualClock::new());
    let plan = Arc::new(FaultPlan::new(11, 1.0, 0.0, Duration::ZERO));
    let config = ResilienceConfig {
        clock: clock.clone(),
        ..ResilienceConfig::default()
    };
    // Only the reasoner is faulty; the request pipeline itself is clean.
    let engine = FaultyEngine::new(Box::<OwlHorstEngine>::default(), plan, clock.clone());
    let svc = GSacs::with_resilience(
        grdf::security::gsacs::OntoRepository::new(),
        policies(),
        Box::new(engine),
        incident_data(),
        16,
        config,
    );
    assert!(svc.is_degraded());
    let req = ClientRequest {
        role: ns::sec("Emergency"),
        query: format!(
            "PREFIX app: <{}>\nSELECT ?c WHERE {{ ?s app:hasChemCode ?c }}",
            ns::APP_NS
        ),
    };
    // Direct (asserted) data still flows under conservative views.
    assert_eq!(svc.handle(&req).unwrap().select_rows().len(), 1);
    assert!(svc.audit_log().iter().any(|e| e.action == "degrade"));
    assert!(svc
        .audit_log()
        .iter()
        .any(|e| e.action == "query" && e.allowed));
}

/// A stall injected into the reasoning stage consumes the whole request
/// budget on the manual clock and the engine reports deadline expiry —
/// no wall time is spent.
#[test]
fn reasoner_stall_trips_deadline_without_wall_sleep() {
    use grdf::runtime::Deadline;
    let clock = Arc::new(ManualClock::new());
    let plan = Arc::new(FaultPlan::new(3, 0.0, 1.0, Duration::from_millis(500)));
    let engine = FaultyEngine::new(Box::<OwlHorstEngine>::default(), plan, clock.clone());
    let mut g = incident_data();
    let deadline = Deadline::armed(clock.clone(), Budget::with_time(Duration::from_millis(100)));
    let wall = std::time::Instant::now();
    let result = engine.materialize(&mut g, &deadline);
    assert!(result.is_err(), "500ms stall must blow a 100ms budget");
    assert_eq!(clock.now(), Duration::from_millis(500));
    assert!(
        wall.elapsed() < Duration::from_millis(400),
        "stall must be simulated, not slept"
    );
}

/// Degraded-mode operation is *visible in traces*: the injected reasoner
/// fault appears as a tagged `fault.injected` span, degraded requests
/// carry a `degraded=true` tag on their root span, the decision trace is
/// flagged, and the audit entry joins the trace by `TraceId`.
#[test]
fn injected_faults_are_visible_in_traces() {
    let clock = Arc::new(ManualClock::new());
    // Every reasoner call fails; the request pipeline itself is clean.
    let plan = Arc::new(FaultPlan::new(11, 1.0, 0.0, Duration::ZERO));
    let obs = grdf::obs::Obs::with_tracing(64);
    let config = ResilienceConfig {
        clock: clock.clone(),
        obs: obs.clone(),
        ..ResilienceConfig::default()
    };
    let engine = FaultyEngine::new(Box::<OwlHorstEngine>::default(), plan, clock.clone());
    let svc = GSacs::with_resilience(
        grdf::security::gsacs::OntoRepository::new(),
        policies(),
        Box::new(engine),
        incident_data(),
        16,
        config,
    );
    assert!(svc.is_degraded());

    // Construction-time trace: the engine failure is attributed to an
    // injected fault, not silent.
    let init_traces = obs.sink().records();
    let fault_spans: Vec<_> = init_traces
        .iter()
        .flat_map(|t| t.spans_named("fault.injected"))
        .collect();
    assert!(
        !fault_spans.is_empty(),
        "injected reasoner fault must be marked in the trace"
    );
    assert!(fault_spans
        .iter()
        .all(|s| s.tag("kind") == Some("error") && s.tag("stage") == Some("reasoning")));

    let req = ClientRequest {
        role: ns::sec("Emergency"),
        query: format!(
            "PREFIX app: <{}>\nSELECT ?c WHERE {{ ?s app:hasChemCode ?c }}",
            ns::APP_NS
        ),
    };
    assert_eq!(svc.handle(&req).unwrap().select_rows().len(), 1);

    // The request's trace marks the degraded mode on its root span…
    let traces = obs.sink().records();
    let request_trace = traces
        .iter()
        .find(|t| !t.spans_named("gsacs.request").is_empty())
        .expect("request trace captured");
    let root = &request_trace.spans_named("gsacs.request")[0];
    assert_eq!(
        root.tag("degraded"),
        Some("true"),
        "degraded-mode requests must be visibly marked"
    );
    // …the decision trace is flagged and joined by TraceId…
    let decision = svc
        .decision_trace_for(&ns::sec("Emergency"))
        .expect("view was built");
    assert!(decision.degraded, "conservative view must be flagged");
    assert_eq!(decision.trace_id, request_trace.id);
    // …and the audit entry carries the same TraceId.
    let audited = svc
        .audit_log()
        .into_iter()
        .find(|e| e.action == "query")
        .expect("request audited");
    assert_eq!(audited.trace_id, request_trace.id);
}
