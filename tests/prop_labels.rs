//! Differential verification of the label compiler: for every role, the
//! bitset-filtered scan must equal the materialized secure view of
//! `grdf::security::views::secure_view` — on every lint-corpus graph, on
//! the §7.1 three-role incident scenario (where the GeoXACML
//! object-level contrast must also reproduce), and on seeded random
//! policy sets over random OWL schemas.

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;

use grdf::feature::{encode_feature, Feature};
use grdf::owl::reasoner::Reasoner;
use grdf::rdf::term::Term;
use grdf::rdf::vocab::{grdf as ns, rdfs};
use grdf::rdf::Graph;
use grdf::security::labels::{LabelIr, RoleHierarchy};
use grdf::security::policy::{Policy, PolicySet};
use grdf::security::views::view_property_count;
use grdf::workload::incident::{incident_store, roles, scenario_policies, xacml_policies};

const TYPES: &[&str] = &["ChemSite", "Stream", "ChemInfo", "Depot"];
const PROPS: &[&str] = &[
    "hasSiteName",
    "hasChemCode",
    "hasContactPhone",
    "hasObjectID",
];

/// Every role's label-filtered view must equal its effective secure view.
fn assert_equivalent(data: &Graph, policies: &PolicySet, context: &str) {
    let ir = LabelIr::compile(data, policies);
    let divergences = ir.verify_label_equivalence(data, policies);
    assert!(
        divergences.is_empty(),
        "{context}: {} divergence(s), first: {}",
        divergences.len(),
        divergences[0]
    );
}

#[test]
fn label_equivalence_holds_on_every_corpus_graph() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_corpus");
    let mut checked = 0;
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("corpus dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "ttl"))
        .collect();
    paths.sort();
    for path in paths {
        if path
            .file_name()
            .is_some_and(|n| n.to_string_lossy().ends_with(".policies.ttl"))
        {
            continue;
        }
        let src = fs::read_to_string(&path).expect("fixture readable");
        let graph = grdf::rdf::turtle::parse(&src).expect("fixture parses");
        let mut policies = Policy::decode_all(&graph);
        let sidecar = path.with_extension("policies.ttl");
        if sidecar.exists() {
            let pg = grdf::rdf::turtle::parse(&fs::read_to_string(&sidecar).expect("sidecar"))
                .expect("sidecar parses");
            policies.extend(Policy::decode_all(&pg));
        }
        if policies.is_empty() {
            continue;
        }
        assert_equivalent(
            &graph,
            &PolicySet::new(policies),
            &path.display().to_string(),
        );
        checked += 1;
    }
    assert!(checked >= 8, "corpus supplies enough policy-bearing graphs");
}

#[test]
fn scenario_three_roles_equivalent_with_geoxacml_contrast() {
    let mut store = incident_store(20, 20, 7);
    store.materialize();
    let ps = scenario_policies();
    let ir = LabelIr::compile(store.graph(), &ps);
    let divergences = ir.verify_label_equivalence(store.graph(), &ps);
    assert!(divergences.is_empty(), "{divergences:?}");

    // Fine-grained labels: 'main repair' sees extents but no chemistry…
    let chem_prop = ns::app("hasChemicalInfo");
    let mr = ir.filtered_view(store.graph(), &ir.authorizations(&roles::main_repair()));
    assert_eq!(view_property_count(&mr, &chem_prop), 0);
    assert!(view_property_count(&mr, &ns::iri("isBoundedBy")) > 0);

    // …while the object-level (GeoXACML-granularity) encoding of the same
    // intent must over-grant: whole ChemSites including the chemical link.
    let (xacml_view, _) = xacml_policies().view(store.graph(), &roles::main_repair());
    assert!(view_property_count(&xacml_view, &chem_prop) > 0);

    // Privilege ordering across the three roles.
    let count = |role: &str| {
        ir.filtered_view(store.graph(), &ir.authorizations(role))
            .len()
    };
    let (mr, hz, em) = (
        count(&roles::main_repair()),
        count(&roles::hazmat()),
        count(&roles::emergency()),
    );
    assert!(
        mr < hz && hz <= em,
        "expected MainRep < Hazmat <= Emergency, got {mr}/{hz}/{em}"
    );
}

/// A random instance dataset over the small type/property universe.
fn arb_dataset() -> impl Strategy<Value = Graph> {
    prop::collection::vec(
        (
            0..TYPES.len(),
            prop::collection::vec((0..PROPS.len(), "[a-z]{1,6}"), 0..4),
        ),
        1..10,
    )
    .prop_map(|features| {
        let mut g = Graph::new();
        for (i, (ty, props)) in features.into_iter().enumerate() {
            let mut f = Feature::new(&ns::app(&format!("x{i}")), TYPES[ty]);
            for (p, v) in props {
                f.set_property(PROPS[p], v.as_str());
            }
            encode_feature(&mut g, &f);
        }
        g
    })
}

/// A random OWL schema fragment: subclass edges over the type universe
/// and subproperty edges over the property universe.
fn arb_schema() -> impl Strategy<Value = Vec<(usize, usize, bool)>> {
    prop::collection::vec((0..TYPES.len(), 0..TYPES.len(), prop::bool::ANY), 0..4)
}

/// A random policy list for one role over the universe.
fn arb_role_policies(tag: usize) -> impl Strategy<Value = Vec<(usize, Option<Vec<usize>>, bool)>> {
    let _ = tag;
    prop::collection::vec(
        (
            0..TYPES.len(),
            prop::option::of(prop::collection::vec(0..PROPS.len(), 1..3)),
            prop::bool::ANY,
        ),
        0..5,
    )
}

fn build_policies(
    role: &str,
    tag: usize,
    rules: &[(usize, Option<Vec<usize>>, bool)],
) -> Vec<Policy> {
    rules
        .iter()
        .enumerate()
        .map(|(i, (ty, props, deny))| {
            let id = format!("urn:policy#{tag}-{i}");
            if *deny {
                Policy::deny(&id, role, &ns::app(TYPES[*ty]))
            } else {
                match props {
                    None => Policy::permit(&id, role, &ns::app(TYPES[*ty])),
                    Some(ps) => {
                        let names: Vec<String> = ps.iter().map(|p| ns::app(PROPS[*p])).collect();
                        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                        Policy::permit_properties(&id, role, &ns::app(TYPES[*ty]), &refs)
                    }
                }
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ≥100 seeded cases: random data, random schema axioms, random
    /// two-role policy sets, random role-hierarchy edge — the compiled
    /// labels must always reproduce the secure views exactly.
    #[test]
    fn label_filter_equals_secure_view(
        data in arb_dataset(),
        schema in arb_schema(),
        rules_a in arb_role_policies(0),
        rules_b in arb_role_policies(1),
        link_roles in prop::bool::ANY,
        materialize in prop::bool::ANY,
    ) {
        let mut data = data;
        for (sub, sup, subprop) in schema {
            if sub == sup {
                continue;
            }
            if subprop {
                data.add(
                    Term::iri(&ns::app(PROPS[sub % PROPS.len()])),
                    Term::iri(rdfs::SUB_PROPERTY_OF),
                    Term::iri(&ns::app(PROPS[sup % PROPS.len()])),
                );
            } else {
                data.add(
                    Term::iri(&ns::app(TYPES[sub])),
                    Term::iri(rdfs::SUB_CLASS_OF),
                    Term::iri(&ns::app(TYPES[sup])),
                );
            }
        }
        let role_a = ns::sec("RoleA");
        let role_b = ns::sec("RoleB");
        if link_roles {
            let mut rh = RoleHierarchy::new();
            rh.add(&role_b, &role_a);
            rh.encode(&mut data);
        }
        if materialize {
            Reasoner::default().materialize(&mut data);
        }
        let mut policies = build_policies(&role_a, 0, &rules_a);
        policies.extend(build_policies(&role_b, 1, &rules_b));
        if policies.is_empty() {
            return Ok(());
        }
        assert_equivalent(&data, &PolicySet::new(policies), "random case");
    }
}
