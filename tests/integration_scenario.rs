//! End-to-end integration of the §7.1 scenario across every crate:
//! workload generation → GML/RDF ingestion → aggregation → reasoning →
//! security views → SPARQL answers through G-SACS.

use grdf::core::ontology::grdf_ontology;
use grdf::core::store::GrdfStore;
use grdf::feature::encode_feature;
use grdf::rdf::term::Term;
use grdf::rdf::vocab::{grdf as ns, rdf};
use grdf::security::gsacs::{ClientRequest, GSacs, OntoRepository, OwlHorstEngine};
use grdf::security::ontology::security_ontology;
use grdf::security::policy::{Policy, PolicySet};
use grdf::workload::chemical::{alignment_axioms, generate_chemical_sites, ChemicalConfig};
use grdf::workload::hydrology::{generate_hydrology, HydrologyConfig};

fn scenario_policies() -> PolicySet {
    PolicySet::new(vec![
        Policy::permit_properties(
            &ns::sec("MainRepPolicy1"),
            &ns::sec("MainRep"),
            &ns::app("ChemSite"),
            &[&ns::iri("isBoundedBy"), &ns::iri("hasGeometry")],
        ),
        Policy::permit(
            &ns::sec("MainRepPolicy2"),
            &ns::sec("MainRep"),
            &ns::app("Stream"),
        ),
        Policy::permit(&ns::sec("E1"), &ns::sec("Emergency"), &ns::app("ChemSite")),
        Policy::permit(&ns::sec("E2"), &ns::sec("Emergency"), &ns::app("ChemInfo")),
        Policy::permit(&ns::sec("E3"), &ns::sec("Emergency"), &ns::app("Stream")),
    ])
}

fn incident_data(streams: usize, sites: usize) -> grdf::rdf::Graph {
    let hydro = generate_hydrology(&HydrologyConfig {
        streams,
        seed: 5,
        ..Default::default()
    });
    let chem = generate_chemical_sites(&ChemicalConfig {
        sites,
        seed: 6,
        ..Default::default()
    });
    let mut g = grdf::rdf::turtle::parse(alignment_axioms()).unwrap();
    for f in hydro.features.iter().chain(chem.features.iter()) {
        encode_feature(&mut g, f);
    }
    g
}

#[test]
fn full_pipeline_gml_to_secure_answers() {
    // 1. Hydrology arrives as GML (simulating the NCTCOG clearinghouse).
    let hydro = generate_hydrology(&HydrologyConfig {
        streams: 30,
        seed: 5,
        ..Default::default()
    });
    let gml_text = grdf::gml::write::write_gml(&hydro);

    // 2. Chemical data arrives as RDF (simulating the erplan repository).
    let chem = generate_chemical_sites(&ChemicalConfig {
        sites: 20,
        seed: 6,
        ..Default::default()
    });
    let mut chem_graph = grdf::rdf::Graph::new();
    for f in &chem.features {
        encode_feature(&mut chem_graph, f);
    }
    let chem_ttl = grdf::rdf::turtle::serialize(&chem_graph, &grdf::rdf::PrefixMap::common());

    // 3. Aggregate both + alignment axioms into a GRDF store.
    let mut store = GrdfStore::new();
    assert_eq!(store.load_gml(&gml_text).unwrap(), 30);
    assert!(store.load_turtle(&chem_ttl).unwrap() > 0);
    store.load_turtle(alignment_axioms()).unwrap();
    let stats = store.materialize();
    assert!(stats.inferred > 0);
    store.check().expect("consistent after materialization");

    // 4. Every stream and site is now a grdf:Feature by inference.
    let feature_count = store.feature_count();
    assert!(feature_count >= 50, "features = {feature_count}");

    // 5. Duplicate chemical sites (same hasSiteId) were identified.
    assert!(
        !store.same_as_links().is_empty(),
        "expected sameAs identities"
    );

    // 6. A spatial cross-domain query runs over the merged graph.
    let rows = store
        .query(
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?site ?stream WHERE {
               ?site a app:ChemSite . ?stream a app:Stream .
               FILTER(grdf:distance(?site, ?stream) < 30000)
             } LIMIT 10",
        )
        .unwrap();
    assert!(
        !rows.select_rows().is_empty(),
        "streams near sites must exist"
    );
}

#[test]
fn gsacs_enforces_role_separation_end_to_end() {
    let mut repo = OntoRepository::new();
    repo.register("grdf", grdf_ontology());
    repo.register("seconto", security_ontology());
    let svc = GSacs::new(
        repo,
        scenario_policies(),
        Box::<OwlHorstEngine>::default(),
        incident_data(20, 20),
        64,
    );

    let chem_q = format!(
        "PREFIX app: <{}>\nSELECT ?i WHERE {{ ?s app:hasChemicalInfo ?i }}",
        ns::APP_NS
    );
    let geo_q = format!(
        "PREFIX app: <{}>\nPREFIX grdf: <{}>\nSELECT ?s WHERE {{ ?s a app:ChemSite ; grdf:isBoundedBy ?b }}",
        ns::APP_NS,
        ns::NS
    );

    // main repair: no chemistry, full geography.
    let mr = svc
        .handle(&ClientRequest {
            role: ns::sec("MainRep"),
            query: chem_q.clone(),
        })
        .unwrap();
    assert_eq!(mr.select_rows().len(), 0);
    let mr_geo = svc
        .handle(&ClientRequest {
            role: ns::sec("MainRep"),
            query: geo_q.clone(),
        })
        .unwrap();
    assert!(!mr_geo.select_rows().is_empty());

    // emergency response: everything.
    let em = svc
        .handle(&ClientRequest {
            role: ns::sec("Emergency"),
            query: chem_q.clone(),
        })
        .unwrap();
    assert!(!em.select_rows().is_empty());

    // Cached repetition returns identical results.
    let em2 = svc
        .handle(&ClientRequest {
            role: ns::sec("Emergency"),
            query: chem_q,
        })
        .unwrap();
    assert_eq!(em.select_rows().len(), em2.select_rows().len());
    let (hits, _) = svc.cache_stats();
    assert!(hits >= 1);
}

#[test]
fn merge_then_policy_still_works() {
    // The §7 claim: "if base data model changes or [is] aggregated with
    // other data sources, the same security framework will continue to
    // work."
    let mut store = GrdfStore::new();
    store.merge_graph(&incident_data(5, 5));
    // Aggregate a new source with its own vocabulary.
    store
        .load_turtle(
            r"@prefix app: <http://grdf.org/app#> .
               @prefix wx: <urn:wx#> .
               @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
               wx:Depot rdfs:subClassOf app:ChemSite .
               wx:depot1 a wx:Depot ; app:hasChemicalInfo wx:depot1chem .
            ",
        )
        .unwrap();
    store.materialize();

    let policies = scenario_policies();
    let (view, _) =
        grdf::security::views::secure_view(store.graph(), &policies, &ns::sec("MainRep"));
    // The depot is governed: its chemical link is suppressed even though
    // no policy mentions wx:Depot.
    assert!(view
        .match_pattern(
            Some(&Term::iri("urn:wx#depot1")),
            Some(&Term::iri(&ns::app("hasChemicalInfo"))),
            None
        )
        .is_empty());
    // But it is still visible as a typed object.
    assert!(!view
        .match_pattern(
            Some(&Term::iri("urn:wx#depot1")),
            Some(&Term::iri(rdf::TYPE)),
            None
        )
        .is_empty());
}

#[test]
fn store_export_formats_are_mutually_consistent() {
    let mut store = GrdfStore::new();
    store.merge_graph(&incident_data(5, 5));
    let ttl = store.to_turtle();
    let xml = store.to_rdfxml().unwrap();
    let g_ttl = grdf::rdf::turtle::parse(&ttl).unwrap();
    let g_xml = grdf::rdf::rdfxml::parse(&xml).unwrap();
    assert_eq!(g_ttl.len(), store.len());
    assert_eq!(g_xml.len(), store.len());
}

#[test]
fn gsacs_serves_concurrent_clients_consistently() {
    // Fig. 3's front-end serves many clients; the shared service must give
    // each thread the same answers a sequential run would.
    let mut repo = OntoRepository::new();
    repo.register("grdf", grdf_ontology());
    let svc = GSacs::new(
        repo,
        scenario_policies(),
        Box::<OwlHorstEngine>::default(),
        incident_data(20, 20),
        128,
    );
    let chem_q = format!(
        "PREFIX app: <{}>\nSELECT ?i WHERE {{ ?s app:hasChemicalInfo ?i }}",
        ns::APP_NS
    );
    let expected = svc
        .handle(&ClientRequest {
            role: ns::sec("Emergency"),
            query: chem_q.clone(),
        })
        .unwrap()
        .select_rows()
        .len();
    assert!(expected > 0);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..8 {
            let svc = &svc;
            let chem_q = chem_q.clone();
            handles.push(scope.spawn(move || {
                let role = if i % 2 == 0 {
                    ns::sec("Emergency")
                } else {
                    ns::sec("MainRep")
                };
                let mut counts = Vec::new();
                for _ in 0..20 {
                    let r = svc
                        .handle(&ClientRequest {
                            role: role.clone(),
                            query: chem_q.clone(),
                        })
                        .unwrap();
                    counts.push(r.select_rows().len());
                }
                (i, counts)
            }));
        }
        for h in handles {
            let (i, counts) = h.join().expect("no panics");
            let want = if i % 2 == 0 { expected } else { 0 };
            assert!(counts.iter().all(|c| *c == want), "thread {i}: {counts:?}");
        }
    });
    let (hits, misses) = svc.cache_stats();
    assert!(hits + misses >= 160);
}

#[test]
fn encoded_topology_reasons_with_the_grdf_ontology() {
    // Fig. 2 end-to-end: build a drainage topology, encode it as triples,
    // merge with the GRDF ontology (whose connectedTo/reachableFrom carry
    // symmetric/transitive/subproperty axioms), materialize, and query
    // reachability — connectivity answered at the RDF level.
    use grdf::topology::model::TopologyModel;

    let mut m = TopologyModel::new();
    let nodes: Vec<_> = (0..5).map(|_| m.add_node()).collect();
    for w in nodes.windows(2) {
        m.add_edge(w[0], w[1]).unwrap();
    }
    let mut store = GrdfStore::new();
    grdf::topology::rdf_codec::encode_topology(store.graph_mut(), "urn:topo#", &m);
    store.materialize();

    let reachable = store
        .query(
            "PREFIX grdf: <http://grdf.org/ontology#>
             ASK { <urn:topo#node0> grdf:reachableFrom <urn:topo#node4> }",
        )
        .unwrap();
    assert_eq!(reachable.as_bool(), Some(true));
    // And the decoded model agrees.
    let back = grdf::topology::rdf_codec::decode_topology(store.graph(), "urn:topo#").unwrap();
    assert!(back.connected(nodes[0], nodes[4]));
}

#[test]
fn silo_answers_nothing_merged_answers_everything() {
    // E4's claim in miniature: cross-domain question, siloed vs merged.
    let cross = "PREFIX app: <http://grdf.org/app#>
         SELECT ?site ?stream WHERE { ?site a app:ChemSite . ?stream a app:Stream . } LIMIT 5";

    let mut hydro_only = GrdfStore::new();
    let hydro = generate_hydrology(&HydrologyConfig {
        streams: 10,
        seed: 5,
        ..Default::default()
    });
    for f in &hydro.features {
        hydro_only.insert_feature(f).unwrap();
    }
    assert_eq!(hydro_only.query(cross).unwrap().select_rows().len(), 0);

    let mut merged = GrdfStore::new();
    merged.merge_graph(&incident_data(10, 10));
    assert!(!merged.query(cross).unwrap().select_rows().is_empty());
}

/// Observability guard for CI: every instrumented stage of the Fig. 3
/// pipeline must emit at least one span in the end-to-end scenario, all
/// sharing one `TraceId`. A stage whose instrumentation regresses to
/// zero spans fails this test (and therefore the build).
#[test]
fn every_instrumented_stage_emits_spans() {
    use grdf::security::ResilienceConfig;

    let obs = grdf::obs::Obs::with_tracing(256);
    let config = ResilienceConfig {
        obs: obs.clone(),
        ..ResilienceConfig::default()
    };
    let mut repo = OntoRepository::new();
    repo.register("grdf", grdf_ontology());
    repo.register("seconto", security_ontology());
    // Build + request inside one scope so construction-time reasoner
    // spans share the request's TraceId.
    let scope_obs = obs.clone();
    {
        let _scope = scope_obs.scope("scenario");
        let svc = GSacs::with_resilience(
            repo,
            scenario_policies(),
            Box::<OwlHorstEngine>::default(),
            incident_data(10, 10),
            16,
            config,
        );
        let req = ClientRequest {
            role: ns::sec("Emergency"),
            query: format!(
                "PREFIX app: <{}>\nSELECT ?c WHERE {{ ?s app:hasChemCode ?c }}",
                ns::APP_NS
            ),
        };
        svc.handle(&req).unwrap();
        svc.handle(&req).unwrap(); // second request exercises the cache-hit path
    }
    let records = obs.sink().records();
    assert_eq!(records.len(), 1, "one scope → one trace");
    let trace = &records[0];
    for stage in [
        "gsacs.init",
        "reasoner.materialize",
        "reasoner.pass",
        "gsacs.request",
        "gsacs.admission",
        "gsacs.cache",
        "view.build",
        "gsacs.decision",
        "query.parse",
        "query.plan",
        "query.join",
    ] {
        assert!(
            !trace.spans_named(stage).is_empty(),
            "instrumented stage {stage:?} emitted zero spans"
        );
    }
    // Both cache outcomes observed.
    let cache_results: Vec<_> = trace
        .spans_named("gsacs.cache")
        .iter()
        .filter_map(|s| s.tag("result").map(str::to_string))
        .collect();
    assert!(cache_results.iter().any(|r| r == "miss"));
    assert!(cache_results.iter().any(|r| r == "hit"));
    // JSON-lines export carries the shared trace id on every line.
    let json = obs.sink().json_lines();
    assert!(json.lines().count() >= trace.spans.len());
    assert!(json.contains(&trace.id.to_string()));
}
